//! Flat compressed-sparse-row (CSR) adjacency storage.
//!
//! The engines walk node neighborhoods on every round; a per-node
//! `Vec<Vec<...>>` adjacency costs one heap allocation per node and a
//! pointer chase per visited list. The CSR layout here packs every
//! adjacency list into flat struct-of-arrays storage addressed by one
//! offsets table: `offsets[v]..offsets[v + 1]` is node `v`'s slice of the
//! `nodes` (neighbor index) and `edges` (connecting edge) arrays. Degrees
//! are offset deltas, neighbor-only scans touch half the bytes of the old
//! pair lists, and the whole structure is three allocations regardless of
//! `n`.
//!
//! Offsets are `u32`, which caps instances at `2m <= u32::MAX` half-edges
//! and `n <= u32::MAX` nodes — [`check_index_space`] turns an oversized
//! build into a typed [`GraphError::TooLarge`] instead of a silent
//! truncation.

use crate::ids::{widen_u32, EdgeId, NodeId};
use crate::GraphError;

/// Maximum node count of the u32 index space.
pub(crate) const MAX_NODES: usize = widen_u32(u32::MAX);

/// Maximum edge count of the u32 index space: the CSR offsets address
/// half-edges, so `2m` must fit in `u32`.
pub(crate) const MAX_EDGES: usize = widen_u32(u32::MAX / 2);

/// Validates that an instance with `nodes` nodes and `edges` edges fits the
/// u32 index space ([`MAX_NODES`] / [`MAX_EDGES`]).
pub(crate) fn check_index_space(nodes: usize, edges: usize) -> Result<(), GraphError> {
    if nodes > MAX_NODES || edges > MAX_EDGES {
        return Err(GraphError::TooLarge { nodes, edges });
    }
    Ok(())
}

/// Iterator pairing a node's neighbor slice with its edge slice, yielding
/// `(neighbor, connecting edge)` like the old nested adjacency lists did.
pub type Neighbors<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, NodeId>>,
    std::iter::Copied<std::slice::Iter<'a, EdgeId>>,
>;

/// Zips parallel neighbor/edge slices into a [`Neighbors`] iterator.
#[inline]
pub(crate) fn zip_neighbors<'a>(nodes: &'a [NodeId], edges: &'a [EdgeId]) -> Neighbors<'a> {
    nodes.iter().copied().zip(edges.iter().copied())
}

/// CSR adjacency in struct-of-arrays form: one offsets table addressing a
/// flat neighbor array and a flat edge array.
#[derive(Clone, Debug, Default)]
pub(crate) struct CsrPairs {
    /// `offsets[v]..offsets[v + 1]` delimits node `v`'s slice; length
    /// `n + 1`, entries bounded by the total half-edge count.
    offsets: Vec<u32>,
    /// Neighbor node per adjacency slot.
    nodes: Vec<NodeId>,
    /// Connecting edge per adjacency slot (parallel to `nodes`).
    edges: Vec<EdgeId>,
}

impl CsrPairs {
    /// Builds the CSR over `n` nodes from undirected `(u, v, e)` edges by
    /// counting sort (two passes, no per-node allocation); each node's
    /// slice is then sorted by neighbor index, pinning the exact order the
    /// old nested-Vec adjacency produced (neighbors are unique in a simple
    /// graph, so the order is fully determined).
    ///
    /// The caller must have validated the index space via
    /// [`check_index_space`]; `2m` half-edge slots are assumed to fit u32.
    pub(crate) fn from_undirected_edges<I>(n: usize, edge_iter: I) -> Self
    where
        I: Iterator<Item = (NodeId, NodeId, EdgeId)> + Clone,
    {
        let mut offsets = vec![0u32; n + 1];
        for (u, v, _) in edge_iter.clone() {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let total = widen_u32(offsets[n]);
        let mut pairs: Vec<(NodeId, EdgeId)> = vec![(NodeId::new(0), EdgeId::new(0)); total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (u, v, e) in edge_iter {
            pairs[widen_u32(cursor[u.index()])] = (v, e);
            cursor[u.index()] += 1;
            pairs[widen_u32(cursor[v.index()])] = (u, e);
            cursor[v.index()] += 1;
        }
        for i in 0..n {
            pairs[widen_u32(offsets[i])..widen_u32(offsets[i + 1])]
                .sort_unstable_by_key(|&(w, _)| w);
        }
        let mut nodes = Vec::with_capacity(total);
        let mut edges = Vec::with_capacity(total);
        for &(w, e) in &pairs {
            nodes.push(w);
            edges.push(e);
        }
        CsrPairs { offsets, nodes, edges }
    }

    /// Builds the CSR **directly from the endpoint records** a streaming
    /// build keeps anyway: degree count + counting-sort fill into the
    /// final flat arrays, then a per-slice tandem sort through one reused
    /// degree-sized scratch buffer. No `(NodeId, EdgeId)` pair list is
    /// ever materialized — the only transient beyond the finished arrays
    /// is the `4n`-byte cursor table (and the `O(Δ)` scratch).
    ///
    /// Parallel edges are detected *after* the per-slice sort as adjacent
    /// duplicates in a neighbor slice — the streaming replacement for the
    /// builder's old sorted-canonical-pair scan, reporting the same
    /// lexicographically-first offending pair. Slot-for-slot equality with
    /// [`from_undirected_edges`](CsrPairs::from_undirected_edges) is pinned
    /// by `csr_equiv` and the streaming equivalence suite.
    ///
    /// The caller must have validated the index space via
    /// [`check_index_space`]; `2m` half-edge slots are assumed to fit u32.
    pub(crate) fn from_endpoints(n: usize, endpoints: &[[NodeId; 2]]) -> Result<Self, GraphError> {
        let mut offsets = vec![0u32; n + 1];
        for &[u, v] in endpoints {
            offsets[u.index() + 1] += 1;
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let total = widen_u32(offsets[n]);
        let mut nodes: Vec<NodeId> = vec![NodeId::new(0); total];
        let mut edges: Vec<EdgeId> = vec![EdgeId::new(0); total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (i, &[u, v]) in endpoints.iter().enumerate() {
            let e = EdgeId::new(i);
            let cu = widen_u32(cursor[u.index()]);
            nodes[cu] = v;
            edges[cu] = e;
            cursor[u.index()] += 1;
            let cv = widen_u32(cursor[v.index()]);
            nodes[cv] = u;
            edges[cv] = e;
            cursor[v.index()] += 1;
        }
        drop(cursor);
        // Per-slice sort by neighbor index, carrying the edge slots along
        // through one reused scratch buffer (same comparator the pair-list
        // build used, so the slot order is identical).
        let mut scratch: Vec<(NodeId, EdgeId)> = Vec::new();
        for i in 0..n {
            let range = widen_u32(offsets[i])..widen_u32(offsets[i + 1]);
            if range.len() < 2 {
                continue;
            }
            scratch.clear();
            scratch.extend(zip_neighbors(&nodes[range.clone()], &edges[range.clone()]));
            scratch.sort_unstable_by_key(|&(w, _)| w);
            for (slot, &(w, e)) in range.clone().zip(scratch.iter()) {
                nodes[slot] = w;
                edges[slot] = e;
            }
            // A simple graph has unique neighbors; an adjacent duplicate in
            // the sorted slice is a parallel edge. Scanning nodes in
            // ascending index order finds the lexicographically smallest
            // canonical offending pair, as the old sorted-pair scan did.
            if let Some(w) = scratch.windows(2).find(|w| w[0].0 == w[1].0) {
                let (x, y) = (i, w[0].0.index());
                return Err(GraphError::ParallelEdge { u: x.min(y), v: x.max(y) });
            }
        }
        Ok(CsrPairs { offsets, nodes, edges })
    }

    /// The adjacency slot range of node `v`.
    #[inline]
    fn range(&self, v: NodeId) -> std::ops::Range<usize> {
        widen_u32(self.offsets[v.index()])..widen_u32(self.offsets[v.index() + 1])
    }

    /// Node `v`'s neighbors, sorted by node index.
    #[inline]
    pub(crate) fn nodes_of(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[self.range(v)]
    }

    /// The edges connecting `v` to [`nodes_of`](CsrPairs::nodes_of), slot
    /// for slot.
    #[inline]
    pub(crate) fn edges_of(&self, v: NodeId) -> &[EdgeId] {
        &self.edges[self.range(v)]
    }

    /// Degree of `v` (an offset delta — O(1), no list access).
    #[inline]
    pub(crate) fn degree(&self, v: NodeId) -> usize {
        widen_u32(self.offsets[v.index() + 1] - self.offsets[v.index()])
    }

    /// The maximum degree over all nodes.
    pub(crate) fn max_degree(&self) -> usize {
        self.offsets.windows(2).map(|w| widen_u32(w[1] - w[0])).max().unwrap_or(0)
    }

    /// Total number of adjacency slots (the degree sum, `2m`).
    #[inline]
    pub(crate) fn slot_count(&self) -> usize {
        self.nodes.len()
    }
}

/// CSR incidence lists: one offsets table over a single flat item array.
/// Used for the semi-graph's per-node half-edge incidence.
#[derive(Clone, Debug, Default)]
pub(crate) struct CsrEdges {
    offsets: Vec<u32>,
    edges: Vec<EdgeId>,
}

impl CsrEdges {
    /// Builds the incidence CSR over `n` nodes by counting sort. Each
    /// node's slice keeps the iterator's relative order (the counting fill
    /// is stable), so feeding incidences in ascending edge order yields
    /// ascending per-node lists — the order the old nested build produced.
    pub(crate) fn from_incidences<I>(n: usize, inc_iter: I) -> Self
    where
        I: Iterator<Item = (NodeId, EdgeId)> + Clone,
    {
        let mut offsets = vec![0u32; n + 1];
        for (v, _) in inc_iter.clone() {
            offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let total = widen_u32(offsets[n]);
        let mut edges: Vec<EdgeId> = vec![EdgeId::new(0); total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (v, e) in inc_iter {
            edges[widen_u32(cursor[v.index()])] = e;
            cursor[v.index()] += 1;
        }
        CsrEdges { offsets, edges }
    }

    /// The incident items of node `v`.
    #[inline]
    pub(crate) fn edges_of(&self, v: NodeId) -> &[EdgeId] {
        &self.edges[widen_u32(self.offsets[v.index()])..widen_u32(self.offsets[v.index() + 1])]
    }

    /// Number of incident items of `v`.
    #[inline]
    pub(crate) fn degree(&self, v: NodeId) -> usize {
        widen_u32(self.offsets[v.index() + 1] - self.offsets[v.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_space_boundaries() {
        // Exactly at the caps: fine.
        assert!(check_index_space(MAX_NODES, 0).is_ok());
        assert!(check_index_space(0, MAX_EDGES).is_ok());
        assert!(check_index_space(MAX_NODES, MAX_EDGES).is_ok());
        // One past either cap: typed error carrying both counts.
        assert!(matches!(
            check_index_space(MAX_NODES + 1, 7),
            Err(GraphError::TooLarge { nodes, edges }) if nodes == MAX_NODES + 1 && edges == 7
        ));
        assert!(matches!(
            check_index_space(3, MAX_EDGES + 1),
            Err(GraphError::TooLarge { nodes, edges }) if nodes == 3 && edges == MAX_EDGES + 1
        ));
        assert!(check_index_space(usize::MAX, usize::MAX).is_err());
    }

    #[test]
    fn edge_cap_is_half_edge_exact() {
        // 2 * MAX_EDGES = u32::MAX - 1 slots fits; one more edge would
        // push the offsets table past u32::MAX.
        assert_eq!(2 * MAX_EDGES, widen_u32(u32::MAX) - 1);
    }

    #[test]
    fn counting_sort_matches_push_and_sort() {
        // Path 0-1-2-3 with shuffled edge insertion.
        let edges = [
            (NodeId::new(2), NodeId::new(3), EdgeId::new(0)),
            (NodeId::new(0), NodeId::new(1), EdgeId::new(1)),
            (NodeId::new(1), NodeId::new(2), EdgeId::new(2)),
        ];
        let csr = CsrPairs::from_undirected_edges(4, edges.iter().copied());
        assert_eq!(csr.nodes_of(NodeId::new(1)), &[NodeId::new(0), NodeId::new(2)]);
        assert_eq!(csr.edges_of(NodeId::new(1)), &[EdgeId::new(1), EdgeId::new(2)]);
        assert_eq!(csr.degree(NodeId::new(0)), 1);
        assert_eq!(csr.degree(NodeId::new(2)), 2);
        assert_eq!(csr.max_degree(), 2);
        assert_eq!(csr.slot_count(), 6);
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let csr = CsrPairs::from_undirected_edges(3, std::iter::empty());
        for i in 0..3 {
            assert!(csr.nodes_of(NodeId::new(i)).is_empty());
            assert_eq!(csr.degree(NodeId::new(i)), 0);
        }
        assert_eq!(csr.max_degree(), 0);
        let zero = CsrPairs::from_undirected_edges(0, std::iter::empty());
        assert_eq!(zero.max_degree(), 0);
        assert_eq!(zero.slot_count(), 0);
    }

    #[test]
    fn incidence_lists_keep_feed_order() {
        let incs = [
            (NodeId::new(1), EdgeId::new(0)),
            (NodeId::new(0), EdgeId::new(0)),
            (NodeId::new(1), EdgeId::new(2)),
            (NodeId::new(2), EdgeId::new(5)),
        ];
        let inc = CsrEdges::from_incidences(3, incs.iter().copied());
        assert_eq!(inc.edges_of(NodeId::new(1)), &[EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(inc.edges_of(NodeId::new(0)), &[EdgeId::new(0)]);
        assert_eq!(inc.degree(NodeId::new(2)), 1);
    }
}
