//! Graphs, semi-graphs and half-edges for deterministic LOCAL algorithms on
//! trees.
//!
//! This crate is the structural foundation of the `treelocal` workspace, a
//! reproduction of *“Towards Optimal Deterministic LOCAL Algorithms on
//! Trees”* (Brandt & Narayanan, PODC 2025). It provides:
//!
//! * [`Graph`] — immutable simple undirected graphs with LOCAL identifiers,
//! * [`EdgeSource`] — streaming edge ingestion: graphs build in one pass
//!   from a rewindable edge stream, with no materialized edge list,
//! * [`SemiGraph`] — Definition 4's semi-graphs (edges of rank 0, 1 or 2)
//!   realized as restrictions of a parent graph,
//! * [`Topology`] — the abstraction over which the simulator and all
//!   distributed algorithms are generic,
//! * traversal ([`components`], [`bfs_distances`], eccentricity/diameter),
//! * forest utilities ([`is_tree`], [`root_forest`]), and
//! * arboricity tooling ([`degeneracy`], [`forest_partition`]).
//!
//! # Examples
//!
//! ```
//! use treelocal_graph::{Graph, SemiGraph, NodeId, components};
//!
//! let tree = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap();
//! assert!(treelocal_graph::is_tree(&tree));
//!
//! // Restrict to the "inner" nodes: boundary edges become rank-1 edges.
//! let inner = SemiGraph::induced_by_nodes(&tree, |v| tree.degree(v) > 1);
//! assert_eq!(inner.nodes().len(), 2);
//! assert_eq!(components(&inner).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod arboricity;
mod csr;
mod eccentricity;
mod forest;
mod ids;
mod invariant;
mod semigraph;
mod source;
pub mod stats;
mod topology;
mod traversal;

pub use adjacency::{Graph, GraphBuilder, GraphEdges};
pub use arboricity::{
    degeneracy, density_lower_bound, forest_partition, is_forest_partition, ForestPartition,
    Peeling,
};
pub use csr::Neighbors;
pub use eccentricity::{
    all_eccentricities, component_eccentricities, Eccentricities, ECC_UNCOMPUTED,
};
pub use forest::{is_forest, is_tree, root_forest, RootedForest};
pub use ids::{narrow_u32, widen_u32, widen_u64, EdgeId, HalfEdge, NodeId, NodeRange, Side};
pub use invariant::OrInvariant;
pub use semigraph::SemiGraph;
pub use source::{EdgeSource, FnEdgeSource, SliceEdges};
pub use topology::{NodeIter, Topology};
pub use traversal::{
    bfs_distances, component_diameter_double_sweep, component_diameter_exact, components,
    eccentricity, eccentricity_sparse, farthest_from, sparse_bfs_farthest,
    tree_component_diameter_sparse, Components,
};

use std::error::Error;
use std::fmt;

/// Errors produced while validating graph construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge references a node index outside `0..n`.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of nodes.
        n: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// Two edges connect the same pair of nodes.
    ParallelEdge {
        /// First endpoint (lower index).
        u: usize,
        /// Second endpoint (higher index).
        v: usize,
    },
    /// The number of provided identifiers does not match the node count.
    IdCountMismatch {
        /// Expected count (`n`).
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// Two nodes share a LOCAL identifier.
    DuplicateId,
    /// A LOCAL identifier is zero (identifiers are from `{1, ..., n^c}`).
    ZeroId,
    /// The instance exceeds the u32 index space of the CSR adjacency
    /// (`n <= u32::MAX` nodes, `2m <= u32::MAX` half-edges).
    TooLarge {
        /// The requested node count.
        nodes: usize,
        /// The requested edge count.
        edges: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { index, n } => {
                write!(f, "node index {index} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::ParallelEdge { u, v } => write!(f, "parallel edge between {u} and {v}"),
            GraphError::IdCountMismatch { expected, got } => {
                write!(f, "expected {expected} identifiers, got {got}")
            }
            GraphError::DuplicateId => write!(f, "duplicate LOCAL identifier"),
            GraphError::ZeroId => write!(f, "LOCAL identifiers must be positive"),
            GraphError::TooLarge { nodes, edges } => write!(
                f,
                "instance with {nodes} nodes / {edges} edges exceeds the u32 index space \
                 (need n <= {} and 2m <= {})",
                u32::MAX,
                u32::MAX
            ),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::ParallelEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("parallel"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<GraphError>();
    }
}
