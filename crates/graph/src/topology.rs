//! The [`Topology`] abstraction: anything a LOCAL algorithm can run on.
//!
//! Both [`Graph`] and [`SemiGraph`] expose the structure a synchronous
//! message-passing algorithm needs: the set of participating nodes, the
//! rank-2 (communication) adjacency, and LOCAL identifiers. The simulator
//! and all distributed algorithms are generic over this trait, so the same
//! implementation runs on whole graphs and on the restricted semi-graphs
//! produced by the decompositions.
//!
//! Adjacency is exposed as two parallel contiguous slices —
//! [`neighbor_nodes`](Topology::neighbor_nodes) and
//! [`neighbor_edges`](Topology::neighbor_edges) — backed by the flat CSR
//! arrays. Hot loops that only need the neighbor indices iterate the node
//! slice alone and touch half the bytes the old `(NodeId, EdgeId)` pair
//! lists did; [`neighbors`](Topology::neighbors) zips the two slices when
//! the connecting edge is needed too.

use crate::adjacency::Graph;
use crate::csr::{zip_neighbors, Neighbors};
use crate::ids::{EdgeId, NodeId, NodeRange};
use crate::semigraph::SemiGraph;

/// Iterator over a topology's participating nodes, in increasing index
/// order.
///
/// A whole [`Graph`] iterates the packed range `0..n` without storing
/// anything; a [`SemiGraph`] iterates its materialized node slice. Both
/// variants are exact-size, so `topo.nodes().len()` is the participating
/// node count.
#[derive(Clone, Debug)]
pub enum NodeIter<'a> {
    /// A counter over the packed range `0..n` (whole-graph topologies).
    Range(NodeRange),
    /// A walk over a materialized node slice (restricted topologies).
    Slice(std::iter::Copied<std::slice::Iter<'a, NodeId>>),
}

impl Iterator for NodeIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            NodeIter::Range(r) => r.next(),
            NodeIter::Slice(s) => s.next(),
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NodeIter::Range(r) => r.size_hint(),
            NodeIter::Slice(s) => s.size_hint(),
        }
    }
}

impl DoubleEndedIterator for NodeIter<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<NodeId> {
        match self {
            NodeIter::Range(r) => r.next_back(),
            NodeIter::Slice(s) => s.next_back(),
        }
    }
}

impl ExactSizeIterator for NodeIter<'_> {}
impl std::iter::FusedIterator for NodeIter<'_> {}

/// A communication topology for LOCAL algorithms.
///
/// Node indices refer to the *parent* graph's index space; topologies over a
/// subset of the parent's nodes simply report fewer nodes. This allows
/// per-node state tables to be indexed uniformly by parent node index.
pub trait Topology {
    /// The parent graph (for identifier and endpoint lookups).
    fn graph(&self) -> &Graph;

    /// Size of the node *index space* (the parent's node count); per-node
    /// tables should be allocated with this length.
    fn index_space(&self) -> usize {
        self.graph().node_count()
    }

    /// The participating nodes, in increasing index order.
    fn nodes(&self) -> NodeIter<'_>;

    /// Whether `v` participates in this topology.
    fn contains_node(&self, v: NodeId) -> bool;

    /// The communication neighbors of `v` (rank-2 adjacency), sorted by
    /// node index — a contiguous slice of the flat CSR neighbor array.
    /// Prefer this over [`neighbors`](Topology::neighbors) when the
    /// connecting edges are not needed.
    fn neighbor_nodes(&self, v: NodeId) -> &[NodeId];

    /// The edges connecting `v` to
    /// [`neighbor_nodes`](Topology::neighbor_nodes), slot for slot:
    /// `neighbor_edges(v)[p]` joins `v` to `neighbor_nodes(v)[p]`.
    fn neighbor_edges(&self, v: NodeId) -> &[EdgeId];

    /// Iterates `(neighbor, connecting edge)` pairs of `v` in neighbor
    /// order, pairing the two CSR slices.
    fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        zip_neighbors(self.neighbor_nodes(v), self.neighbor_edges(v))
    }

    /// The communication degree of `v`.
    fn degree(&self, v: NodeId) -> usize {
        self.neighbor_nodes(v).len()
    }

    /// The maximum communication degree over participating nodes.
    fn max_degree(&self) -> usize;

    /// The LOCAL identifier of `v`.
    fn local_id(&self, v: NodeId) -> u64 {
        self.graph().local_id(v)
    }
}

impl Topology for Graph {
    fn graph(&self) -> &Graph {
        self
    }

    fn nodes(&self) -> NodeIter<'_> {
        NodeIter::Range(self.node_ids())
    }

    fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    fn neighbor_nodes(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbor_nodes(self, v)
    }

    fn neighbor_edges(&self, v: NodeId) -> &[EdgeId] {
        Graph::neighbor_edges(self, v)
    }

    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }
}

impl Topology for SemiGraph<'_> {
    fn graph(&self) -> &Graph {
        self.parent()
    }

    fn nodes(&self) -> NodeIter<'_> {
        NodeIter::Slice(SemiGraph::nodes(self).iter().copied())
    }

    fn contains_node(&self, v: NodeId) -> bool {
        SemiGraph::contains_node(self, v)
    }

    fn neighbor_nodes(&self, v: NodeId) -> &[NodeId] {
        self.underlying_neighbor_nodes(v)
    }

    fn neighbor_edges(&self, v: NodeId) -> &[EdgeId] {
        self.underlying_neighbor_edges(v)
    }

    fn degree(&self, v: NodeId) -> usize {
        self.underlying_degree(v)
    }

    fn max_degree(&self) -> usize {
        self.underlying_max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_its_own_topology() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(Topology::max_degree(&g), 2);
        assert_eq!(Topology::nodes(&g).len(), 3);
        assert!(Topology::contains_node(&g, NodeId::new(2)));
        assert_eq!(Topology::degree(&g, NodeId::new(1)), 2);
        assert_eq!(Topology::local_id(&g, NodeId::new(0)), 1);
    }

    #[test]
    fn semigraph_topology_uses_rank2_adjacency() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = SemiGraph::induced_by_nodes(&g, |v| v.index() <= 1);
        assert_eq!(Topology::nodes(&s).len(), 2);
        // Node 1 communicates only with node 0: its edge to node 2 has rank 1.
        assert_eq!(Topology::degree(&s, NodeId::new(1)), 1);
        assert_eq!(Topology::max_degree(&s), 1);
        assert_eq!(s.index_space(), 4);
    }

    #[test]
    fn neighbor_slices_and_zip_agree() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let c = NodeId::new(0);
        let nodes = Topology::neighbor_nodes(&g, c);
        let edges = Topology::neighbor_edges(&g, c);
        assert_eq!(nodes.len(), edges.len());
        let zipped: Vec<_> = Topology::neighbors(&g, c).collect();
        for (p, &(w, e)) in zipped.iter().enumerate() {
            assert_eq!(w, nodes[p]);
            assert_eq!(e, edges[p]);
        }
    }

    fn generic_total_degree<T: Topology>(t: &T) -> usize {
        t.nodes().map(|v| t.degree(v)).sum()
    }

    #[test]
    fn works_generically() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(generic_total_degree(&g), 6);
        let s = SemiGraph::whole(&g);
        assert_eq!(generic_total_degree(&s), 6);
    }
}
