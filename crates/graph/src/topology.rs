//! The [`Topology`] abstraction: anything a LOCAL algorithm can run on.
//!
//! Both [`Graph`] and [`SemiGraph`] expose the structure a synchronous
//! message-passing algorithm needs: the set of participating nodes, the
//! rank-2 (communication) adjacency, and LOCAL identifiers. The simulator
//! and all distributed algorithms are generic over this trait, so the same
//! implementation runs on whole graphs and on the restricted semi-graphs
//! produced by the decompositions.

use crate::adjacency::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::semigraph::SemiGraph;

/// A communication topology for LOCAL algorithms.
///
/// Node indices refer to the *parent* graph's index space; topologies over a
/// subset of the parent's nodes simply report fewer nodes. This allows
/// per-node state tables to be indexed uniformly by parent node index.
pub trait Topology {
    /// The parent graph (for identifier and endpoint lookups).
    fn graph(&self) -> &Graph;

    /// Size of the node *index space* (the parent's node count); per-node
    /// tables should be allocated with this length.
    fn index_space(&self) -> usize {
        self.graph().node_count()
    }

    /// The participating nodes, in increasing index order.
    fn nodes(&self) -> &[NodeId];

    /// Whether `v` participates in this topology.
    fn contains_node(&self, v: NodeId) -> bool;

    /// The communication neighbors of `v` with their connecting edges
    /// (rank-2 adjacency), sorted by neighbor index.
    fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)];

    /// The communication degree of `v`.
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// The maximum communication degree over participating nodes.
    fn max_degree(&self) -> usize;

    /// The LOCAL identifier of `v`.
    fn local_id(&self, v: NodeId) -> u64 {
        self.graph().local_id(v)
    }
}

impl Topology for Graph {
    fn graph(&self) -> &Graph {
        self
    }

    fn nodes(&self) -> &[NodeId] {
        self.node_ids()
    }

    fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        Graph::neighbors(self, v)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }
}

impl Topology for SemiGraph<'_> {
    fn graph(&self) -> &Graph {
        self.parent()
    }

    fn nodes(&self) -> &[NodeId] {
        SemiGraph::nodes(self)
    }

    fn contains_node(&self, v: NodeId) -> bool {
        SemiGraph::contains_node(self, v)
    }

    fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        self.underlying_neighbors(v)
    }

    fn max_degree(&self) -> usize {
        self.underlying_max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_its_own_topology() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let t: &dyn Fn() = &|| {};
        let _ = t; // silence lints about unused closures in doc-like test
        assert_eq!(Topology::max_degree(&g), 2);
        assert_eq!(Topology::nodes(&g).len(), 3);
        assert!(Topology::contains_node(&g, NodeId::new(2)));
        assert_eq!(Topology::degree(&g, NodeId::new(1)), 2);
        assert_eq!(Topology::local_id(&g, NodeId::new(0)), 1);
    }

    #[test]
    fn semigraph_topology_uses_rank2_adjacency() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = SemiGraph::induced_by_nodes(&g, |v| v.index() <= 1);
        assert_eq!(Topology::nodes(&s).len(), 2);
        // Node 1 communicates only with node 0: its edge to node 2 has rank 1.
        assert_eq!(Topology::degree(&s, NodeId::new(1)), 1);
        assert_eq!(Topology::max_degree(&s), 1);
        assert_eq!(s.index_space(), 4);
    }

    fn generic_total_degree<T: Topology>(t: &T) -> usize {
        t.nodes().iter().map(|&v| t.degree(v)).sum()
    }

    #[test]
    fn works_generically() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(generic_total_degree(&g), 6);
        let s = SemiGraph::whole(&g);
        assert_eq!(generic_total_degree(&s), 6);
    }
}
