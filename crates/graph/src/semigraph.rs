//! Semi-graphs: graphs whose edges may have 0, 1 or 2 endpoints.
//!
//! Definition 4 of the paper introduces semi-graphs to describe the residual
//! structures that appear when a problem instance is split into parts: an
//! edge of the original tree whose other endpoint lies outside the part at
//! hand becomes an edge of *rank 1* (one endpoint), and problems constrain
//! the labels of the *half-edges* that are present.
//!
//! A [`SemiGraph`] here is always a view into a parent [`Graph`]: it keeps
//! the parent's node and edge index spaces so that half-edge labelings
//! computed on different semi-graphs of the same parent can be merged
//! directly (this is exactly what Algorithms 2 and 4 of the paper do).

use crate::adjacency::Graph;
use crate::csr::{zip_neighbors, CsrEdges, CsrPairs, Neighbors};
use crate::ids::{EdgeId, HalfEdge, NodeId, Side};

/// A semi-graph view into a parent [`Graph`].
///
/// # Examples
///
/// ```
/// use treelocal_graph::{Graph, NodeId, SemiGraph};
///
/// // Path 0 - 1 - 2; restrict to the node set {1}.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let s = SemiGraph::induced_by_nodes(&g, |v| v.index() == 1);
/// // Both edges are present (each has an endpoint in {1}) but have rank 1.
/// assert_eq!(s.edges().len(), 2);
/// assert!(s.edges().iter().all(|&e| s.rank(e) == 1));
/// assert_eq!(s.half_degree(NodeId::new(1)), 2);
/// assert_eq!(s.underlying_degree(NodeId::new(1)), 0);
/// ```
#[derive(Clone, Debug)]
pub struct SemiGraph<'g> {
    graph: &'g Graph,
    node_in: Vec<bool>,
    nodes: Vec<NodeId>,
    edge_in: Vec<bool>,
    edges: Vec<EdgeId>,
    /// Which half-edges are present, per parent edge (only meaningful for
    /// edges contained in the semi-graph).
    half: Vec<[bool; 2]>,
    /// Half-edge incidence (CSR): for each node, the contained edges whose
    /// half at this node is present, in ascending edge order.
    inc: CsrEdges,
    /// Rank-2 adjacency (CSR): the communication graph / underlying graph.
    adj2: CsrPairs,
    max_underlying_degree: usize,
}

impl<'g> SemiGraph<'g> {
    /// Views the entire graph as a semi-graph (every edge has rank 2).
    pub fn whole(graph: &'g Graph) -> Self {
        Self::induced_by_nodes(graph, |_| true)
    }

    /// The semi-graph induced by a node set `P` (used by Theorem 12).
    ///
    /// Per the paper's construction of `T_C`/`T_R`: the node set is `P`, the
    /// edge set is every parent edge with **at least one** endpoint in `P`,
    /// and a half-edge `(v, e)` is present iff `v ∈ P`. Edges with exactly
    /// one endpoint in `P` therefore have rank 1.
    pub fn induced_by_nodes<F: Fn(NodeId) -> bool>(graph: &'g Graph, in_set: F) -> Self {
        let n = graph.node_count();
        let node_in: Vec<bool> = (0..n).map(|i| in_set(NodeId::new(i))).collect();
        let mut edge_in = vec![false; graph.edge_count()];
        let mut half = vec![[false, false]; graph.edge_count()];
        for e in graph.edge_ids() {
            let [u, v] = graph.endpoints(e);
            let hu = node_in[u.index()];
            let hv = node_in[v.index()];
            if hu || hv {
                edge_in[e.index()] = true;
                half[e.index()] = [hu, hv];
            }
        }
        Self::assemble(graph, node_in, edge_in, half)
    }

    /// The semi-graph induced by an edge set `Q` (used by Theorem 15).
    ///
    /// Per the paper's `G[Q]`: the edge set is `Q`, the node set is the set
    /// of endpoints of edges in `Q`, and every half-edge of a contained edge
    /// is present (so all contained edges have rank 2).
    pub fn induced_by_edges<F: Fn(EdgeId) -> bool>(graph: &'g Graph, in_set: F) -> Self {
        let mut node_in = vec![false; graph.node_count()];
        let mut edge_in = vec![false; graph.edge_count()];
        let mut half = vec![[false, false]; graph.edge_count()];
        for e in graph.edge_ids() {
            if in_set(e) {
                edge_in[e.index()] = true;
                half[e.index()] = [true, true];
                let [u, v] = graph.endpoints(e);
                node_in[u.index()] = true;
                node_in[v.index()] = true;
            }
        }
        Self::assemble(graph, node_in, edge_in, half)
    }

    fn assemble(
        graph: &'g Graph,
        node_in: Vec<bool>,
        edge_in: Vec<bool>,
        half: Vec<[bool; 2]>,
    ) -> Self {
        let n = graph.node_count();
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).filter(|v| node_in[v.index()]).collect();
        let edges: Vec<EdgeId> = graph.edge_ids().filter(|e| edge_in[e.index()]).collect();
        // Incidences fed in ascending edge order; the stable counting fill
        // keeps each per-node list ascending.
        let inc = CsrEdges::from_incidences(
            n,
            edges.iter().flat_map(|&e| {
                let [u, v] = graph.endpoints(e);
                let [hu, hv] = half[e.index()];
                hu.then_some((u, e)).into_iter().chain(hv.then_some((v, e)))
            }),
        );
        let adj2 = CsrPairs::from_undirected_edges(
            n,
            edges.iter().filter(|&&e| half[e.index()] == [true, true]).map(|&e| {
                let [u, v] = graph.endpoints(e);
                (u, v, e)
            }),
        );
        let max_underlying_degree = nodes.iter().map(|&v| adj2.degree(v)).max().unwrap_or(0);
        SemiGraph { graph, node_in, nodes, edge_in, edges, half, inc, adj2, max_underlying_degree }
    }

    /// The parent graph this semi-graph is a view of.
    #[inline]
    pub fn parent(&self) -> &'g Graph {
        self.graph
    }

    /// The contained nodes, in increasing index order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The contained edges, in increasing index order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Whether node `v` belongs to the semi-graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.node_in[v.index()]
    }

    /// Whether parent edge `e` belongs to the semi-graph.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edge_in[e.index()]
    }

    /// Whether the half-edge of `e` on `side` is present.
    #[inline]
    pub fn half_present(&self, e: EdgeId, side: Side) -> bool {
        self.edge_in[e.index()] && self.half[e.index()][side.index()]
    }

    /// The rank of a contained edge: its number of present half-edges.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not contained in the semi-graph.
    #[inline]
    pub fn rank(&self, e: EdgeId) -> usize {
        assert!(self.edge_in[e.index()], "{e:?} not in semi-graph");
        let [a, b] = self.half[e.index()];
        usize::from(a) + usize::from(b)
    }

    /// The degree of `v` in the semi-graph sense: the number of half-edges
    /// incident on `v` (counts rank-1 and rank-2 edges alike).
    ///
    /// This is the `deg` used in node constraints `N^{deg(v)}` of the
    /// node-edge-checkability formalism.
    #[inline]
    pub fn half_degree(&self, v: NodeId) -> usize {
        self.inc.degree(v)
    }

    /// The contained edges with a present half-edge at `v`.
    #[inline]
    pub fn incident_edges(&self, v: NodeId) -> &[EdgeId] {
        self.inc.edges_of(v)
    }

    /// Iterates over the present half-edges at `v`.
    pub fn half_edges_of(&self, v: NodeId) -> impl Iterator<Item = HalfEdge> + '_ {
        let g = self.graph;
        self.inc.edges_of(v).iter().map(move |&e| HalfEdge::new(e, g.side_of(e, v)))
    }

    /// Iterates over every present half-edge of the semi-graph.
    pub fn half_edges(&self) -> impl Iterator<Item = HalfEdge> + '_ {
        self.edges.iter().flat_map(move |&e| {
            let [a, b] = self.half[e.index()];
            let first = a.then_some(HalfEdge::new(e, Side::First));
            let second = b.then_some(HalfEdge::new(e, Side::Second));
            first.into_iter().chain(second)
        })
    }

    /// The rank-2 neighbors of `v` (the adjacency of the *underlying graph*,
    /// over which LOCAL communication happens), sorted by node index.
    #[inline]
    pub fn underlying_neighbor_nodes(&self, v: NodeId) -> &[NodeId] {
        self.adj2.nodes_of(v)
    }

    /// The rank-2 edges connecting `v` to
    /// [`underlying_neighbor_nodes`](SemiGraph::underlying_neighbor_nodes),
    /// slot for slot.
    #[inline]
    pub fn underlying_neighbor_edges(&self, v: NodeId) -> &[EdgeId] {
        self.adj2.edges_of(v)
    }

    /// Iterates the rank-2 `(neighbor, connecting edge)` pairs of `v`.
    #[inline]
    pub fn underlying_neighbors(&self, v: NodeId) -> Neighbors<'_> {
        zip_neighbors(self.adj2.nodes_of(v), self.adj2.edges_of(v))
    }

    /// The degree of `v` in the underlying graph.
    #[inline]
    pub fn underlying_degree(&self, v: NodeId) -> usize {
        self.adj2.degree(v)
    }

    /// The maximum degree of the underlying graph (the `Δ` in the runtime
    /// `O(f(Δ) + log* n)` of a truly local algorithm run on this semi-graph).
    #[inline]
    pub fn underlying_max_degree(&self) -> usize {
        self.max_underlying_degree
    }

    /// The *edge degree* of a contained edge within the semi-graph's
    /// underlying graph: number of adjacent rank-2 edges.
    pub fn underlying_edge_degree(&self, e: EdgeId) -> usize {
        let [u, v] = self.graph.endpoints(e);
        let du = if self.half_present(e, Side::First) { self.underlying_degree(u) } else { 0 };
        let dv = if self.half_present(e, Side::Second) { self.underlying_degree(v) } else { 0 };
        match self.rank(e) {
            2 => du + dv - 2,
            1 => du.max(dv),
            _ => 0,
        }
    }

    /// Total number of present half-edges.
    pub fn half_edge_count(&self) -> usize {
        self.edges.iter().map(|&e| self.rank(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn whole_graph_is_rank2_everywhere() {
        let g = path(4);
        let s = SemiGraph::whole(&g);
        assert_eq!(s.nodes().len(), 4);
        assert_eq!(s.edges().len(), 3);
        for &e in s.edges() {
            assert_eq!(s.rank(e), 2);
        }
        assert_eq!(s.underlying_max_degree(), g.max_degree());
        assert_eq!(s.half_edge_count(), 2 * g.edge_count());
    }

    #[test]
    fn induced_by_nodes_keeps_boundary_edges_at_rank1() {
        // Path 0-1-2-3, keep {0, 1}.
        let g = path(4);
        let s = SemiGraph::induced_by_nodes(&g, |v| v.index() <= 1);
        assert_eq!(s.nodes().len(), 2);
        // Edges 0-1 (rank 2) and 1-2 (rank 1); edge 2-3 absent.
        assert_eq!(s.edges().len(), 2);
        let e01 = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        let e12 = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        let e23 = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        assert_eq!(s.rank(e01), 2);
        assert_eq!(s.rank(e12), 1);
        assert!(!s.contains_edge(e23));
        // Node 1 has two half-edges but underlying degree 1.
        assert_eq!(s.half_degree(NodeId::new(1)), 2);
        assert_eq!(s.underlying_degree(NodeId::new(1)), 1);
    }

    #[test]
    fn induced_by_edges_is_all_rank2() {
        let g = path(4);
        let e12 = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        let s = SemiGraph::induced_by_edges(&g, |e| e == e12);
        assert_eq!(s.nodes().len(), 2);
        assert!(s.contains_node(NodeId::new(1)));
        assert!(s.contains_node(NodeId::new(2)));
        assert_eq!(s.edges(), &[e12]);
        assert_eq!(s.rank(e12), 2);
        // Node 1's other parent edge is not part of the semi-graph.
        assert_eq!(s.half_degree(NodeId::new(1)), 1);
    }

    #[test]
    fn half_edges_of_matches_incident_edges() {
        let g = path(4);
        let s = SemiGraph::induced_by_nodes(&g, |v| v.index() % 2 == 0);
        for &v in s.nodes() {
            let hs: Vec<_> = s.half_edges_of(v).collect();
            assert_eq!(hs.len(), s.half_degree(v));
            for h in hs {
                assert_eq!(g.endpoint(h.edge, h.side), v);
                assert!(s.half_present(h.edge, h.side));
            }
        }
    }

    #[test]
    fn half_edges_enumeration_counts() {
        let g = path(5);
        let s = SemiGraph::induced_by_nodes(&g, |v| v.index() >= 2);
        assert_eq!(s.half_edges().count(), s.half_edge_count());
    }

    #[test]
    fn disjoint_node_parts_partition_half_edges() {
        // Key invariant used by Theorem 12: for a node partition (C, R), the
        // half-edges of T_C and T_R partition the half-edges of T.
        let g = path(7);
        let in_c = |v: NodeId| !v.index().is_multiple_of(3);
        let sc = SemiGraph::induced_by_nodes(&g, in_c);
        let sr = SemiGraph::induced_by_nodes(&g, |v| !in_c(v));
        let total = 2 * g.edge_count();
        assert_eq!(sc.half_edge_count() + sr.half_edge_count(), total);
    }

    #[test]
    fn underlying_edge_degree_on_star() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let s = SemiGraph::whole(&g);
        for &e in s.edges() {
            assert_eq!(s.underlying_edge_degree(e), 2);
        }
    }

    #[test]
    fn empty_restriction() {
        let g = path(3);
        let s = SemiGraph::induced_by_nodes(&g, |_| false);
        assert!(s.nodes().is_empty());
        assert!(s.edges().is_empty());
        assert_eq!(s.underlying_max_degree(), 0);
    }
}
