//! Construction-path observability counters.
//!
//! Generation-heavy suites spend most of their wall clock *building*
//! graphs, not stepping them; the driver's progress line was blind to that
//! phase. Every streamed build (see [`crate::source`]) records here:
//!
//! - [`bytes_ingested`] accumulates the compact endpoint bytes ingested
//!   from edge streams (8 bytes per edge — the u32 record pair the graph
//!   keeps), a monotone measure of generation work done.
//! - [`peak_build_bytes`] tracks the largest single-build allocation
//!   footprint seen (endpoint records + CSR arrays + transient fill
//!   cursor + any explicit identifier table), the build-side analogue of
//!   the engine's peak-RSS readings.
//!
//! Counters are process-wide relaxed atomics, same discipline as
//! `treelocal-sim`'s step counters: cheap enough to leave on, and the
//! driver reads deltas around each job.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_INGESTED: AtomicU64 = AtomicU64::new(0);
static PEAK_BUILD_BYTES: AtomicU64 = AtomicU64::new(0);

/// Records one streamed build: `ingested` endpoint bytes consumed and the
/// build's total allocation `footprint` in bytes.
pub(crate) fn record_build(ingested: u64, footprint: u64) {
    BYTES_INGESTED.fetch_add(ingested, Ordering::Relaxed);
    PEAK_BUILD_BYTES.fetch_max(footprint, Ordering::Relaxed);
}

/// Total endpoint bytes ingested from edge streams since process start
/// (or the last [`reset`]), at 8 bytes per edge.
pub fn bytes_ingested() -> u64 {
    BYTES_INGESTED.load(Ordering::Relaxed)
}

/// Largest single-build allocation footprint (bytes) seen since process
/// start (or the last [`reset`]).
pub fn peak_build_bytes() -> u64 {
    PEAK_BUILD_BYTES.load(Ordering::Relaxed)
}

/// Resets both counters to zero (tests and per-run baselines).
pub fn reset() {
    BYTES_INGESTED.store(0, Ordering::Relaxed);
    PEAK_BUILD_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn builds_feed_the_counters() {
        // Counters are process-wide, so assert on deltas and monotonicity
        // rather than absolute values (other tests build graphs too).
        let before = bytes_ingested();
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        let delta = bytes_ingested() - before;
        assert!(delta >= 8 * 3, "3 streamed edges must ingest at least 24 bytes, saw {delta}");
        // 3 edges, 4 nodes, sequential ids: 24m + 8n + 4 bytes.
        assert!(peak_build_bytes() >= 24 * 3 + 8 * 4 + 4);
    }
}
