//! CSR adjacency equivalence: the flat slices must reproduce, slot for
//! slot, the adjacency a naive nested-`Vec` build produces.
//!
//! The graph crate stores adjacency as CSR (one `u32` offset table over two
//! flat parallel arrays) built with a counting sort. The previous layout —
//! `Vec<Vec<(NodeId, EdgeId)>>`, pushed per edge and sorted per node — is
//! reconstructed here as an executable reference model, and the two are
//! compared exactly on random Prüfer trees, random forests, stars, paths,
//! and semi-graph restrictions. Because every downstream consumer (engines,
//! decompositions, solvers) iterates adjacency in storage order, slot-level
//! equality here is what pins their outcomes byte-identical across the
//! layout change.

use proptest::prelude::*;
use treelocal_gen::{path, random_forest, random_tree, star};
use treelocal_graph::{EdgeId, Graph, NodeId, SemiGraph, Side, Topology};

/// The pre-CSR adjacency build: push both directions of every edge, then
/// sort each per-node list by neighbor index.
fn nested_adjacency(g: &Graph) -> Vec<Vec<(NodeId, EdgeId)>> {
    let mut adj = vec![Vec::new(); g.node_count()];
    for e in g.edge_ids() {
        let [u, v] = g.endpoints(e);
        adj[u.index()].push((v, e));
        adj[v.index()].push((u, e));
    }
    for list in &mut adj {
        list.sort_unstable_by_key(|&(w, _)| w);
    }
    adj
}

/// Slot-for-slot comparison of the CSR slices against the reference lists.
fn assert_matches_reference(g: &Graph) {
    let reference = nested_adjacency(g);
    let mut slots = 0usize;
    for v in g.node_ids() {
        let expect = &reference[v.index()];
        let nodes = g.neighbor_nodes(v);
        let edges = g.neighbor_edges(v);
        assert_eq!(nodes.len(), expect.len(), "degree of {v:?}");
        assert_eq!(edges.len(), expect.len(), "edge slots of {v:?}");
        assert_eq!(g.degree(v), expect.len());
        for (p, &(w, e)) in expect.iter().enumerate() {
            assert_eq!(nodes[p], w, "neighbor slot {p} of {v:?}");
            assert_eq!(edges[p], e, "edge slot {p} of {v:?}");
        }
        let zipped: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
        assert_eq!(&zipped, expect, "zipped pairs of {v:?}");
        slots += expect.len();
    }
    assert_eq!(g.degree_sum(), slots);
    assert_eq!(g.max_degree(), reference.iter().map(Vec::len).max().unwrap_or(0));
}

/// Reference rank-2 adjacency and half-edge incidence of a semi-graph,
/// computed edge by edge from the membership predicates alone.
fn assert_semigraph_matches_reference(g: &Graph, s: &SemiGraph<'_>) {
    for &v in s.nodes() {
        let mut rank2: Vec<(NodeId, EdgeId)> = Vec::new();
        let mut halves: Vec<EdgeId> = Vec::new();
        for e in g.edge_ids() {
            if !s.contains_edge(e) {
                continue;
            }
            let [u, w] = g.endpoints(e);
            let (other, side) = if u == v {
                (w, Side::First)
            } else if w == v {
                (u, Side::Second)
            } else {
                continue;
            };
            if s.half_present(e, side) {
                halves.push(e);
            }
            if s.half_present(e, Side::First) && s.half_present(e, Side::Second) {
                rank2.push((other, e));
            }
        }
        rank2.sort_unstable_by_key(|&(w, _)| w);
        let nodes = s.underlying_neighbor_nodes(v);
        let edges = s.underlying_neighbor_edges(v);
        assert_eq!(nodes.len(), rank2.len(), "rank-2 degree of {v:?}");
        for (p, &(w, e)) in rank2.iter().enumerate() {
            assert_eq!(nodes[p], w);
            assert_eq!(edges[p], e);
        }
        assert_eq!(Topology::degree(s, v), rank2.len());
        // Incidence lists stay in ascending edge order (the feed order of
        // the stable counting fill).
        assert_eq!(s.incident_edges(v), &halves[..], "incidences of {v:?}");
        assert_eq!(s.half_degree(v), halves.len());
    }
}

#[test]
fn structured_shapes_match_reference() {
    for n in [1usize, 2, 3, 7, 64, 257] {
        assert_matches_reference(&path(n));
        assert_matches_reference(&star(n));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prufer_trees_match_reference(n in 2usize..400, seed in any::<u64>()) {
        assert_matches_reference(&random_tree(n, seed));
    }

    #[test]
    fn random_forests_match_reference(
        n in 1usize..200,
        frac_pct in 0u32..101,
        seed in any::<u64>(),
    ) {
        assert_matches_reference(&random_forest(n, f64::from(frac_pct) / 100.0, seed));
    }

    #[test]
    fn node_restrictions_match_reference(n in 2usize..120, seed in any::<u64>(), mask in any::<u64>()) {
        let g = random_tree(n, seed);
        let s = SemiGraph::induced_by_nodes(&g, |v| (mask >> (v.index() % 64)) & 1 == 0);
        assert_semigraph_matches_reference(&g, &s);
    }

    #[test]
    fn edge_restrictions_match_reference(n in 2usize..120, seed in any::<u64>(), mask in any::<u64>()) {
        let g = random_tree(n, seed);
        let s = SemiGraph::induced_by_edges(&g, |e| (mask >> (e.index() % 64)) & 1 == 1);
        assert_semigraph_matches_reference(&g, &s);
    }

    #[test]
    fn whole_semigraph_matches_graph_adjacency(n in 2usize..120, seed in any::<u64>()) {
        let g = random_tree(n, seed);
        let s = SemiGraph::whole(&g);
        for v in g.node_ids() {
            prop_assert_eq!(s.underlying_neighbor_nodes(v), g.neighbor_nodes(v));
            prop_assert_eq!(s.underlying_neighbor_edges(v), g.neighbor_edges(v));
        }
    }
}
