//! Property tests for the semi-graph algebra that Theorems 12 and 15 rely
//! on: node partitions split half-edges exactly, edge partitions split
//! edges exactly, and degrees/ranks behave.

use proptest::prelude::*;
use treelocal_graph::{components, Graph, NodeId, SemiGraph, Side, Topology};

/// A random simple graph from a seeded edge subset of a clique.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut edges = Vec::new();
        let mut state = seed | 1;
        for u in 0..n {
            for v in (u + 1)..n {
                // xorshift
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 5 == 0 {
                    edges.push((u, v));
                }
            }
        }
        Graph::from_edges(n, &edges).expect("simple by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_partition_partitions_half_edges(g in arb_graph(), mask_seed in any::<u64>()) {
        let in_a = |v: NodeId| (mask_seed >> (v.index() % 64)) & 1 == 0;
        let a = SemiGraph::induced_by_nodes(&g, in_a);
        let b = SemiGraph::induced_by_nodes(&g, |v| !in_a(v));
        prop_assert_eq!(a.nodes().len() + b.nodes().len(), g.node_count());
        prop_assert_eq!(a.half_edge_count() + b.half_edge_count(), 2 * g.edge_count());
        // Each half-edge present in exactly one side.
        for e in g.edge_ids() {
            for side in [Side::First, Side::Second] {
                let ia = a.contains_edge(e) && a.half_present(e, side);
                let ib = b.contains_edge(e) && b.half_present(e, side);
                prop_assert!(ia ^ ib);
            }
        }
    }

    #[test]
    fn edge_partition_partitions_edges(g in arb_graph(), mask_seed in any::<u64>()) {
        let in_a = |e: treelocal_graph::EdgeId| (mask_seed >> (e.index() % 64)) & 1 == 0;
        let a = SemiGraph::induced_by_edges(&g, in_a);
        let b = SemiGraph::induced_by_edges(&g, |e| !in_a(e));
        prop_assert_eq!(a.edges().len() + b.edges().len(), g.edge_count());
        // All contained edges have rank 2, and per-node half-degrees sum to
        // the full degree.
        for v in g.node_ids() {
            let da = if a.contains_node(v) { a.half_degree(v) } else { 0 };
            let db = if b.contains_node(v) { b.half_degree(v) } else { 0 };
            prop_assert_eq!(da + db, g.degree(v));
        }
        for &e in a.edges() {
            prop_assert_eq!(a.rank(e), 2);
        }
    }

    #[test]
    fn node_induced_members_keep_full_half_degree(g in arb_graph(), mask_seed in any::<u64>()) {
        // The Theorem 12 invariant: a member of a node-induced semi-graph
        // sees ALL of its parent half-edges (some at rank 1).
        let in_a = |v: NodeId| (mask_seed >> (v.index() % 64)) & 1 == 0;
        let s = SemiGraph::induced_by_nodes(&g, in_a);
        for &v in s.nodes() {
            prop_assert_eq!(s.half_degree(v), g.degree(v));
            prop_assert!(s.underlying_degree(v) <= g.degree(v));
        }
    }

    #[test]
    fn whole_semigraph_mirrors_graph(g in arb_graph()) {
        let s = SemiGraph::whole(&g);
        prop_assert_eq!(s.underlying_max_degree(), g.max_degree());
        prop_assert_eq!(components(&s).count(), components(&g).count());
        for v in g.node_ids() {
            prop_assert_eq!(Topology::degree(&s, v), g.degree(v));
        }
    }
}
