//! Theorem 12: the transformation on trees (Algorithm 2).
//!
//! Given a node-edge-checkable problem `Π ∈ P1` (it implements
//! [`NodeSequential`], certifying that `Π×` is solvable on valid
//! instances) and a truly local algorithm `A` with complexity
//! `O(f(Δ) + log* n)`, the pipeline is:
//!
//! 1. compute `k = ⌊g(n)⌋` from `g^{f(g)} = n`;
//! 2. run Algorithm 1 (rake-and-compress) with parameter `k` —
//!    `O(log_k n)` iterations;
//! 3. run `A` on the semi-graph `T_C` induced by the compressed nodes,
//!    whose underlying degree is ≤ `k` by Lemma 10 — `O(f(k) + log* n)`
//!    rounds;
//! 4. solve the edge-list variant `Π×` on each connected component of
//!    `T_R` by gathering it at its highest node (diameter ≤
//!    `4(log_k n + 1) + 2` by Lemma 11) and completing the labeling with
//!    the `P1` sequential process.
//!
//! Total: `O(f(g(n)) + log* n)` rounds, the Theorem 1 bound.

use crate::g_solver::{k_for, solve_g};
use crate::report::{TransformOutcome, TransformParams, TransformStats};
use treelocal_algos::{ChargedModel, GlobalCtx, TrulyLocal};
use treelocal_decomp::{rake_compress, RakeCompress};
use treelocal_graph::OrInvariant;
use treelocal_graph::{components, Graph, NodeId};
use treelocal_problems::{solve_nodes_sequential, verify_graph, NodeSequential, Problem};
use treelocal_sim::{log_star_u64, GatherPlan, RoundReport};

/// The Theorem 12 pipeline, configured with a problem and an inner
/// algorithm.
///
/// # Examples
///
/// ```
/// use treelocal_core::TreeTransform;
/// use treelocal_algos::MisAlgo;
/// use treelocal_gen::random_tree;
/// use treelocal_problems::Mis;
///
/// let tree = random_tree(500, 7);
/// let outcome = TreeTransform::new(&Mis, &MisAlgo).run(&tree);
/// assert!(outcome.valid);
/// ```
#[derive(Clone, Debug)]
pub struct TreeTransform<'p, P, A> {
    problem: &'p P,
    algo: &'p A,
    charged: Option<ChargedModel>,
    k_override: Option<usize>,
    distributed_decomposition: bool,
}

impl<'p, P, A> TreeTransform<'p, P, A>
where
    P: Problem + NodeSequential,
    A: TrulyLocal<P>,
{
    /// Creates the pipeline for `problem` with inner algorithm `algo`.
    pub fn new(problem: &'p P, algo: &'p A) -> Self {
        TreeTransform {
            problem,
            algo,
            charged: None,
            k_override: None,
            distributed_decomposition: false,
        }
    }

    /// Runs the decomposition on the LOCAL simulator instead of the fast
    /// centralized implementation. Slower, but certifies the decomposition
    /// round count by actual execution (the two produce identical
    /// layerings; property tests assert it).
    pub fn with_distributed_decomposition(mut self) -> Self {
        self.distributed_decomposition = true;
        self
    }

    /// Attaches a literature complexity model: `k` is then selected from
    /// the model's `f`, and the outcome carries a parallel round report in
    /// which the inner algorithm is charged `⌈f(Δ)⌉ + log*` rounds.
    pub fn with_charged(mut self, model: ChargedModel) -> Self {
        self.charged = Some(model);
        self
    }

    /// Forces the decomposition parameter `k` (used by the ablation
    /// experiments sweeping around `g(n)`).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k_override = Some(k.max(2));
        self
    }

    fn f_for_selection(&self, d: f64) -> f64 {
        match &self.charged {
            Some(m) => m.eval(d),
            None => self.algo.f(d),
        }
    }

    /// Runs the full pipeline on a tree.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a tree (Algorithm 1's precondition).
    pub fn run(&self, tree: &Graph) -> TransformOutcome<P::Label> {
        let n = tree.node_count();
        let gctx = GlobalCtx::of(tree);
        let g_value = if n >= 4 { solve_g(n as f64, |d| self.f_for_selection(d)) } else { 2.0 };
        let k = self.k_override.unwrap_or_else(|| k_for(n, |d| self.f_for_selection(d)));
        let mut executed = RoundReport::new();

        // Phase 1: Algorithm 1.
        let rc: RakeCompress = if self.distributed_decomposition {
            treelocal_decomp::rake_compress_distributed(tree, k)
        } else {
            rake_compress(tree, k)
        };
        executed.push("rake-compress(Alg1)", rc.rounds);

        // Phase 2: A on T_C (underlying degree ≤ k by Lemma 10).
        let tc = rc.compressed_semigraph(tree);
        let tr = rc.raked_semigraph(tree);
        debug_assert!(tc.underlying_max_degree() <= k, "Lemma 10");
        let (mut labeling, rep_a) = self.algo.solve(&tc, &gctx, self.problem);
        executed.absorb("A", &rep_a);

        // Phase 3: Π× on the components of T_R, each gathered at its
        // highest node and completed by the P1 sequential process. The
        // GatherPlan costs each component with one eccentricity pass
        // (byte-identical to the former BFS per center, pinned by the
        // gather_equiv suite and the golden round-count fixture).
        let order = rc.layer_order();
        let cc = components(&tr);
        let gather_plan = GatherPlan::new(&tr);
        let mut max_gather = 0u64;
        for c in 0..cc.count() {
            let mut members: Vec<NodeId> = cc.members(c).to_vec();
            members.sort_by(|&x, &y| {
                let kx = (order.rank(x), tree.local_id(x));
                let ky = (order.rank(y), tree.local_id(y));
                ky.cmp(&kx) // highest first
            });
            let center = members[0];
            max_gather = max_gather.max(gather_plan.rounds_at(center));
            solve_nodes_sequential(self.problem, tree, &members, &mut labeling)
                .or_invariant("P1 guarantees the edge-list variant is solvable");
        }
        executed.push("gather-residual(Alg2)", max_gather);

        let valid = verify_graph(self.problem, tree, &labeling).is_ok();
        let charged = self.charged.as_ref().map(|m| {
            let mut r = RoundReport::new();
            r.push("rake-compress(Alg1)", rc.rounds);
            r.push("A(model f(Δ))", m.eval(tc.underlying_max_degree() as f64).ceil() as u64);
            r.push("A(model log*)", u64::from(log_star_u64(gctx.id_space)));
            r.push("gather-residual(Alg2)", max_gather);
            r
        });
        TransformOutcome {
            labeling,
            executed,
            charged,
            params: TransformParams { n, g_value, k, a: 1, rho: 1 },
            stats: TransformStats {
                decomposition_iterations: rc.iterations,
                sub_max_degree: tc.underlying_max_degree(),
                residual_components: cc.count(),
                max_gather_rounds: max_gather,
                star_groups: 0,
            },
            valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_algos::{DegColoringAlgo, DeltaColoringAlgo, MisAlgo};
    use treelocal_gen::{balanced_regular_tree, caterpillar, random_tree, relabel, IdStrategy};
    use treelocal_problems::{
        classic, extract_coloring, DegPlusOneColoring, DeltaPlusOneColoring, Mis,
    };

    #[test]
    fn mis_transform_on_random_trees() {
        for seed in 0..6 {
            let tree = relabel(&random_tree(300, seed), IdStrategy::Permuted { seed });
            let out = TreeTransform::new(&Mis, &MisAlgo).run(&tree);
            assert!(out.valid, "seed {seed}");
            let set = Mis.extract(&tree, &out.labeling);
            assert!(classic::is_valid_mis(&tree, &set), "seed {seed}");
            assert!(out.stats.sub_max_degree <= out.params.k);
        }
    }

    #[test]
    fn mis_transform_on_structured_trees() {
        for tree in [
            balanced_regular_tree(3, 200),
            balanced_regular_tree(10, 200),
            caterpillar(40, 4),
            treelocal_gen::path(150),
            treelocal_gen::star(80),
            treelocal_gen::spider(8, 12),
        ] {
            let out = TreeTransform::new(&Mis, &MisAlgo).run(&tree);
            assert!(out.valid);
            let set = Mis.extract(&tree, &out.labeling);
            assert!(classic::is_valid_mis(&tree, &set));
        }
    }

    #[test]
    fn deg_coloring_transform() {
        for seed in 0..4 {
            let tree = random_tree(250, seed + 100);
            let out = TreeTransform::new(&DegPlusOneColoring, &DegColoringAlgo).run(&tree);
            assert!(out.valid, "seed {seed}");
            let colors = extract_coloring(&tree, &out.labeling);
            assert!(classic::is_valid_deg_plus_one_coloring(&tree, &colors));
        }
    }

    #[test]
    fn delta_coloring_transform() {
        let tree = random_tree(220, 5);
        let p = DeltaPlusOneColoring { delta: tree.max_degree() };
        let out = TreeTransform::new(&p, &DeltaColoringAlgo).run(&tree);
        assert!(out.valid);
        let colors = extract_coloring(&tree, &out.labeling);
        assert!(classic::is_valid_palette_coloring(&tree, &colors, tree.max_degree() as u32 + 1));
    }

    #[test]
    fn k_override_still_valid() {
        let tree = random_tree(200, 9);
        for k in [2usize, 3, 8, 32] {
            let out = TreeTransform::new(&Mis, &MisAlgo).with_k(k).run(&tree);
            assert!(out.valid, "k {k}");
            assert_eq!(out.params.k, k);
        }
    }

    #[test]
    fn charged_model_report_present() {
        let tree = random_tree(400, 2);
        let out = TreeTransform::new(&Mis, &MisAlgo)
            .with_charged(ChargedModel::bek14_coloring())
            .run(&tree);
        assert!(out.valid);
        let charged = out.charged.expect("charged report");
        assert!(charged.total() > 0);
        // The model's f(Δ) phase is bounded by f(k) with k from the model.
        assert!(charged.rounds_of("A(model f(Δ))") <= out.params.k as u64 + 1);
    }

    #[test]
    fn tiny_trees() {
        for n in 1..6 {
            let tree = treelocal_gen::path(n);
            let out = TreeTransform::new(&Mis, &MisAlgo).run(&tree);
            assert!(out.valid, "n {n}");
        }
    }

    #[test]
    fn distributed_decomposition_certifies_rounds() {
        let tree = random_tree(300, 21);
        let fast = TreeTransform::new(&Mis, &MisAlgo).run(&tree);
        let certified =
            TreeTransform::new(&Mis, &MisAlgo).with_distributed_decomposition().run(&tree);
        assert!(fast.valid && certified.valid);
        // Identical layering implies identical pipeline behaviour: the
        // charged decomposition rounds and the chosen k agree, and the
        // distributed execution's round count matches the centralized
        // charge.
        assert_eq!(fast.params.k, certified.params.k);
        assert_eq!(
            fast.executed.rounds_of("rake-compress(Alg1)"),
            certified.executed.rounds_of("rake-compress(Alg1)")
        );
        assert_eq!(fast.total_rounds(), certified.total_rounds());
        assert_eq!(Mis.extract(&tree, &fast.labeling), Mis.extract(&tree, &certified.labeling));
    }
}
