//! Theorem 15: the transformation on bounded-arboricity graphs
//! (Algorithm 4).
//!
//! Given a node-edge-checkable problem `Π ∈ P2` (it implements
//! [`EdgeSequential`], certifying that `Π*` is solvable on valid
//! instances) and a truly local algorithm `A` with complexity
//! `O(f(Δ) + log* n)`, the pipeline on a graph of arboricity ≤ `a` is:
//!
//! 1. compute `k = ⌊g(n)^ρ⌋` (clamped to `≥ 5a`) from `g^{f(g)} = n`;
//! 2. run Algorithm 3 (the `(b,k)`-decomposition, `b = 2a`) —
//!    `O(log_{k/a} n)` iterations by Lemma 13;
//! 3. split the atypical edges into `2a` rooted forests and 3-color each
//!    (Cole–Vishkin, `log* n + O(1)` rounds) yielding `6a` star-forest
//!    groups;
//! 4. run `A` on the semi-graph `G[E_2]` of typical edges, whose degree is
//!    ≤ `k` by Lemma 14 — `O(f(k) + log* n)` rounds;
//! 5. process the `6a` groups sequentially, solving the node-list variant
//!    `Π*` on each star by gathering it at its center (a constant number
//!    of rounds per group) with the `P2` per-edge sequential process.
//!
//! Total: `O(a + ρ·f(g(n)^ρ)/(ρ − log_{g(n)} a) + log* n)` rounds — the
//! Theorem 2 bound; with `a = 1, ρ = 1` on trees this is
//! `O(f(g(n)) + log* n)`, the dual of Theorem 12.

use crate::g_solver::solve_g;
use crate::report::{TransformOutcome, TransformParams, TransformStats};
use treelocal_algos::{ChargedModel, GlobalCtx, TrulyLocal};
use treelocal_decomp::{arb_decompose, split_atypical};
use treelocal_graph::Graph;
use treelocal_graph::OrInvariant;
use treelocal_problems::{solve_edges_sequential, verify_graph, EdgeSequential, Problem};
use treelocal_sim::{log_star_u64, RoundReport};

/// The Theorem 15 pipeline, configured with a problem and an inner
/// algorithm.
///
/// # Examples
///
/// ```
/// use treelocal_core::ArbTransform;
/// use treelocal_algos::MatchingAlgo;
/// use treelocal_gen::random_tree;
/// use treelocal_problems::MaximalMatching;
///
/// let tree = random_tree(400, 3);
/// let outcome = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&tree, 1);
/// assert!(outcome.valid);
/// ```
#[derive(Clone, Debug)]
pub struct ArbTransform<'p, P, A> {
    problem: &'p P,
    algo: &'p A,
    charged: Option<ChargedModel>,
    rho: u32,
    k_override: Option<usize>,
    distributed_decomposition: bool,
}

impl<'p, P, A> ArbTransform<'p, P, A>
where
    P: Problem + EdgeSequential,
    A: TrulyLocal<P>,
{
    /// Creates the pipeline for `problem` with inner algorithm `algo`
    /// (`ρ = 1`; see [`with_rho`](ArbTransform::with_rho)).
    pub fn new(problem: &'p P, algo: &'p A) -> Self {
        ArbTransform {
            problem,
            algo,
            charged: None,
            rho: 1,
            k_override: None,
            distributed_decomposition: false,
        }
    }

    /// Runs Algorithm 3 on the LOCAL simulator instead of the fast
    /// centralized implementation (identical output, certified rounds).
    pub fn with_distributed_decomposition(mut self) -> Self {
        self.distributed_decomposition = true;
        self
    }

    /// Sets Theorem 15's `ρ` parameter (`k = g(n)^ρ`); the paper uses
    /// `ρ = 2` for the arboricity version of Theorem 3.
    pub fn with_rho(mut self, rho: u32) -> Self {
        assert!(rho >= 1);
        self.rho = rho;
        self
    }

    /// Attaches a literature complexity model (see
    /// [`TreeTransform::with_charged`](crate::TreeTransform::with_charged)).
    pub fn with_charged(mut self, model: ChargedModel) -> Self {
        self.charged = Some(model);
        self
    }

    /// Forces the decomposition parameter `k` (clamped to `≥ 5a` at run
    /// time).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k_override = Some(k);
        self
    }

    fn f_for_selection(&self, d: f64) -> f64 {
        match &self.charged {
            Some(m) => m.eval(d),
            None => self.algo.f(d),
        }
    }

    /// Runs the full pipeline on a graph of arboricity at most `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a < 1`.
    pub fn run(&self, g: &Graph, a: usize) -> TransformOutcome<P::Label> {
        assert!(a >= 1, "arboricity bound must be positive");
        let n = g.node_count();
        let gctx = GlobalCtx::of(g);
        let g_value = if n >= 4 { solve_g(n as f64, |d| self.f_for_selection(d)) } else { 2.0 };
        let k_raw =
            self.k_override.unwrap_or_else(|| g_value.powi(self.rho as i32).floor() as usize);
        let k = k_raw.max(5 * a).max(2);
        let mut executed = RoundReport::new();

        // Phase 1: Algorithm 3.
        let d = if self.distributed_decomposition {
            treelocal_decomp::arb_decompose_distributed(g, a, k)
        } else {
            arb_decompose(g, a, k)
        };
        executed.push("decomposition(Alg3)", d.rounds);

        // Phase 2: forest split + Cole–Vishkin 3-colorings (parallel).
        let split = split_atypical(g, &d);
        executed.push("forest-split(CV)", split.rounds);

        // Phase 3: A on G[E_2] (degree ≤ k by Lemma 14).
        let e2 = d.typical_semigraph(g);
        debug_assert!(e2.underlying_max_degree() <= k, "Lemma 14");
        let (mut labeling, rep_a) = self.algo.solve(&e2, &gctx, self.problem);
        executed.absorb("A", &rep_a);

        // Phase 4: the 6a star-forest groups, sequentially. Every
        // component is a star (center = highest node), so each group costs
        // a constant number of rounds: gather (1) + compute + distribute
        // (1) + handoff (1).
        let mut star_rounds = 0u64;
        let mut nonempty_groups = 0usize;
        for (i, j) in split.groups() {
            let mut edges = split.group_edges(i, j);
            if edges.is_empty() {
                continue;
            }
            nonempty_groups += 1;
            star_rounds += 3;
            edges.sort_unstable();
            solve_edges_sequential(self.problem, g, &edges, &mut labeling)
                .or_invariant("P2 guarantees the node-list variant is solvable");
        }
        executed.push("star-groups(Alg4)", star_rounds);

        let valid = verify_graph(self.problem, g, &labeling).is_ok();
        let charged = self.charged.as_ref().map(|m| {
            let mut r = RoundReport::new();
            r.push("decomposition(Alg3)", d.rounds);
            r.push("forest-split(CV)", split.rounds);
            r.push("A(model f(Δ))", m.eval(e2.underlying_max_degree() as f64).ceil() as u64);
            r.push("A(model log*)", u64::from(log_star_u64(gctx.id_space)));
            r.push("star-groups(Alg4)", star_rounds);
            r
        });
        TransformOutcome {
            labeling,
            executed,
            charged,
            params: TransformParams { n, g_value, k, a, rho: self.rho },
            stats: TransformStats {
                decomposition_iterations: d.iterations,
                sub_max_degree: e2.underlying_max_degree(),
                residual_components: d.atypical_edges().len(),
                max_gather_rounds: 3,
                star_groups: nonempty_groups,
            },
            valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_algos::{EdgeColoringAlgo, MatchingAlgo, PaletteEdgeColoringAlgo};
    use treelocal_gen::{
        grid, random_arboricity_graph, random_tree, relabel, triangulated_grid, IdStrategy,
    };
    use treelocal_problems::{classic, EdgeDegreeColoring, MaximalMatching, PaletteEdgeColoring};

    #[test]
    fn matching_transform_on_trees() {
        for seed in 0..6 {
            let tree = relabel(&random_tree(250, seed), IdStrategy::Permuted { seed });
            let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&tree, 1);
            assert!(out.valid, "seed {seed}");
            let m = MaximalMatching.extract(&tree, &out.labeling);
            assert!(classic::is_valid_maximal_matching(&tree, &m), "seed {seed}");
        }
    }

    #[test]
    fn matching_transform_on_arboricity_graphs() {
        for (g, a) in [
            (grid(14, 14), 2usize),
            (triangulated_grid(11, 11), 3),
            (random_arboricity_graph(200, 3, 5), 3),
        ] {
            let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&g, a);
            assert!(out.valid);
            let m = MaximalMatching.extract(&g, &out.labeling);
            assert!(classic::is_valid_maximal_matching(&g, &m));
        }
    }

    #[test]
    fn edge_coloring_transform_on_trees() {
        for seed in 0..5 {
            let tree = random_tree(220, seed + 50);
            let out = ArbTransform::new(&EdgeDegreeColoring, &EdgeColoringAlgo).run(&tree, 1);
            assert!(out.valid, "seed {seed}");
            let colors = EdgeDegreeColoring.extract(&tree, &out.labeling);
            assert!(classic::is_valid_edge_degree_coloring(&tree, &colors), "seed {seed}");
        }
    }

    #[test]
    fn edge_coloring_transform_on_planar_like_graphs() {
        let g = triangulated_grid(10, 10);
        let out = ArbTransform::new(&EdgeDegreeColoring, &EdgeColoringAlgo).with_rho(2).run(&g, 3);
        assert!(out.valid);
        let colors = EdgeDegreeColoring.extract(&g, &out.labeling);
        assert!(classic::is_valid_edge_degree_coloring(&g, &colors));
        assert_eq!(out.params.rho, 2);
    }

    #[test]
    fn palette_coloring_transform() {
        let g = grid(12, 12);
        let p = PaletteEdgeColoring::two_delta_minus_one(g.max_degree());
        let out = ArbTransform::new(&p, &PaletteEdgeColoringAlgo).run(&g, 2);
        assert!(out.valid);
    }

    #[test]
    fn k_respects_5a_floor() {
        let g = random_arboricity_graph(100, 4, 1);
        let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&g, 4);
        assert!(out.params.k >= 20);
        assert!(out.valid);
    }

    #[test]
    fn charged_model_for_theorem3() {
        let tree = random_tree(300, 8);
        let out = ArbTransform::new(&EdgeDegreeColoring, &EdgeColoringAlgo)
            .with_charged(ChargedModel::bbko22b_edge_coloring())
            .run(&tree, 1);
        assert!(out.valid);
        assert!(out.charged.is_some());
    }

    #[test]
    fn star_groups_bounded_by_6a() {
        let g = random_arboricity_graph(180, 2, 9);
        let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&g, 2);
        assert!(out.stats.star_groups <= 6 * 2);
        assert!(out.valid);
    }

    #[test]
    fn tiny_graphs() {
        for n in [2usize, 3, 5] {
            let tree = treelocal_gen::path(n);
            let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&tree, 1);
            assert!(out.valid, "n {n}");
        }
    }

    #[test]
    fn distributed_decomposition_certifies_rounds() {
        let g = random_arboricity_graph(150, 2, 8);
        let fast = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&g, 2);
        let certified = ArbTransform::new(&MaximalMatching, &MatchingAlgo)
            .with_distributed_decomposition()
            .run(&g, 2);
        assert!(fast.valid && certified.valid);
        assert_eq!(fast.total_rounds(), certified.total_rounds());
        assert_eq!(
            MaximalMatching.extract(&g, &fast.labeling),
            MaximalMatching.extract(&g, &certified.labeling)
        );
    }
}
