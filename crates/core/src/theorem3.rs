//! Theorem 3 entry points: `(edge-degree+1)`-edge coloring in
//! `O(log^{12/13} n)` rounds on trees and `O(a + log^{12/13} n)` on graphs
//! of arboricity ≤ `a`, plus the Section 5.2 maximal matching result and
//! the Theorem 1 instantiations for MIS and coloring.
//!
//! Each entry point wires the appropriate problem, inner algorithm,
//! charged literature model and `ρ` together, runs the pipeline, and
//! extracts the classic solution. The tree pipelines cost their
//! gather-residual phase through [`treelocal_sim::GatherPlan`]'s
//! component-level eccentricity cache (see `TreeTransform`) — round
//! counts are unchanged (pinned by the bench crate's golden fixture).
//! With one gather center per residual component the plan costs about
//! what the former per-center BFS did; its speedup materializes on
//! all-centers workloads (the gather bench and the million-node smoke
//! tier), where one component pass replaces a BFS per queried center.

use crate::arb_transform::ArbTransform;
use crate::report::TransformOutcome;
use crate::tree_transform::TreeTransform;
use treelocal_algos::{ChargedModel, DegColoringAlgo, EdgeColoringAlgo, MatchingAlgo, MisAlgo};
use treelocal_graph::Graph;
use treelocal_problems::{
    DegPlusOneColoring, EdgeColLabel, EdgeDegreeColoring, MatchLabel, MaximalMatching, Mis,
    MisLabel,
};

/// Theorem 3 on trees: `(edge-degree+1)`-edge coloring via Theorem 15 with
/// `a = 1, ρ = 1`, charged against the BBKO22b `O(log^12 Δ)` black box.
///
/// Returns the outcome and the extracted classic edge coloring.
pub fn edge_coloring_on_tree(tree: &Graph) -> (TransformOutcome<EdgeColLabel>, Vec<u32>) {
    let out = ArbTransform::new(&EdgeDegreeColoring, &EdgeColoringAlgo)
        .with_charged(ChargedModel::bbko22b_edge_coloring())
        .run(tree, 1);
    let colors = EdgeDegreeColoring.extract(tree, &out.labeling);
    (out, colors)
}

/// Theorem 3 on graphs of arboricity ≤ `a`: `ρ = 2`, per the paper's
/// derivation (the `ρ/(ρ − log_g a)` factor is then a constant for
/// `a ≤ g`).
pub fn edge_coloring_bounded_arboricity(
    g: &Graph,
    a: usize,
) -> (TransformOutcome<EdgeColLabel>, Vec<u32>) {
    let out = ArbTransform::new(&EdgeDegreeColoring, &EdgeColoringAlgo)
        .with_charged(ChargedModel::bbko22b_edge_coloring())
        .with_rho(2)
        .run(g, a);
    let colors = EdgeDegreeColoring.extract(g, &out.labeling);
    (out, colors)
}

/// Section 5.2: maximal matching on trees in `O(log n / log log n)` rounds
/// via Theorem 15 (charged against PR01's `O(Δ)` algorithm).
pub fn matching_on_tree(tree: &Graph) -> (TransformOutcome<MatchLabel>, Vec<bool>) {
    let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo)
        .with_charged(ChargedModel::pr01_matching())
        .run(tree, 1);
    let matching = MaximalMatching.extract(tree, &out.labeling);
    (out, matching)
}

/// Theorem 1 instantiated for MIS on trees: `O(log n / log log n)` rounds
/// (charged against the tight `O(Δ)` truly local algorithm).
pub fn mis_on_tree(tree: &Graph) -> (TransformOutcome<MisLabel>, Vec<bool>) {
    let out =
        TreeTransform::new(&Mis, &MisAlgo).with_charged(ChargedModel::bek14_coloring()).run(tree);
    let set = Mis.extract(tree, &out.labeling);
    (out, set)
}

/// Theorem 1 instantiated for `(deg+1)`-coloring on trees (charged against
/// MT20's `O(√Δ log Δ)` list coloring).
pub fn coloring_on_tree(tree: &Graph) -> (TransformOutcome<u32>, Vec<u32>) {
    let out = TreeTransform::new(&DegPlusOneColoring, &DegColoringAlgo)
        .with_charged(ChargedModel::mt20_coloring())
        .run(tree);
    let colors = treelocal_problems::extract_coloring(tree, &out.labeling);
    (out, colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_gen::{balanced_regular_tree, random_tree, triangulated_grid};
    use treelocal_problems::classic;

    #[test]
    fn theorem3_tree_pipeline() {
        for seed in 0..3 {
            let tree = random_tree(300, seed);
            let (out, colors) = edge_coloring_on_tree(&tree);
            assert!(out.valid);
            assert!(classic::is_valid_edge_degree_coloring(&tree, &colors));
            assert!(out.charged.is_some());
        }
    }

    #[test]
    fn theorem3_planar_pipeline() {
        let g = triangulated_grid(9, 9);
        let (out, colors) = edge_coloring_bounded_arboricity(&g, 3);
        assert!(out.valid);
        assert!(classic::is_valid_edge_degree_coloring(&g, &colors));
    }

    #[test]
    fn matching_and_mis_and_coloring() {
        let tree = balanced_regular_tree(6, 260);
        let (mo, matching) = matching_on_tree(&tree);
        assert!(mo.valid);
        assert!(classic::is_valid_maximal_matching(&tree, &matching));

        let (io, set) = mis_on_tree(&tree);
        assert!(io.valid);
        assert!(classic::is_valid_mis(&tree, &set));

        let (co, colors) = coloring_on_tree(&tree);
        assert!(co.valid);
        assert!(classic::is_valid_deg_plus_one_coloring(&tree, &colors));
    }
}
