//! Baselines the transformation is compared against in the experiments.
//!
//! * [`direct_baseline`] — run the truly local algorithm on the whole
//!   instance: `O(f(Δ) + log* n)` rounds, which is poor when `Δ` is large
//!   (the exact situation the transformation fixes).
//! * [`gather_baseline_node`] / [`gather_baseline_edge`] — the trivial
//!   `O(diameter)` algorithm: gather everything at one node, solve
//!   centrally (with the sequential process), redistribute.
//! * Fixed-`k` pipelines (via
//!   [`TreeTransform::with_k`](crate::TreeTransform::with_k)) cover the
//!   classic decomposition-based baselines: `k = O(1)` reproduces the
//!   `O(log n)`-layer approach, while `k = g(n)` is the paper's optimal
//!   choice — experiment E10 sweeps `k` to show the optimum.

use crate::report::{TransformOutcome, TransformParams, TransformStats};
use treelocal_algos::{GlobalCtx, TrulyLocal};
use treelocal_graph::OrInvariant;
use treelocal_graph::{eccentricity, Graph, NodeId, SemiGraph};
use treelocal_problems::{
    solve_edges_sequential, solve_nodes_sequential, verify_graph, EdgeSequential, HalfEdgeLabeling,
    NodeSequential, Problem,
};
use treelocal_sim::RoundReport;

/// Runs the truly local algorithm directly on the whole instance.
pub fn direct_baseline<P: Problem, A: TrulyLocal<P>>(
    problem: &P,
    algo: &A,
    g: &Graph,
) -> TransformOutcome<P::Label> {
    let s = SemiGraph::whole(g);
    let gctx = GlobalCtx::of(g);
    let (labeling, rep) = algo.solve(&s, &gctx, problem);
    let mut executed = RoundReport::new();
    executed.absorb("A(direct)", &rep);
    let valid = verify_graph(problem, g, &labeling).is_ok();
    TransformOutcome {
        labeling,
        executed,
        charged: None,
        params: TransformParams {
            n: g.node_count(),
            g_value: g.max_degree() as f64,
            k: g.max_degree(),
            a: 1,
            rho: 1,
        },
        stats: TransformStats { sub_max_degree: g.max_degree(), ..TransformStats::default() },
        valid,
    }
}

/// The gather center used by the trivial baselines: the highest-identifier
/// node (any fixed local rule would do; the cost is its eccentricity).
fn gather_center(g: &Graph) -> NodeId {
    g.node_ids().max_by_key(|&v| g.local_id(v)).or_invariant("non-empty graph")
}

/// The trivial global-gather algorithm for `P1` problems: `2·ecc` rounds.
pub fn gather_baseline_node<P: Problem + NodeSequential>(
    problem: &P,
    g: &Graph,
) -> TransformOutcome<P::Label> {
    let center = gather_center(g);
    let rounds = 2 * u64::from(eccentricity(g, center));
    let mut labeling = HalfEdgeLabeling::for_graph(g);
    let order: Vec<NodeId> = g.node_ids().collect();
    solve_nodes_sequential(problem, g, &order, &mut labeling)
        .or_invariant("sequential process completes on valid instances");
    let valid = verify_graph(problem, g, &labeling).is_ok();
    TransformOutcome {
        labeling,
        executed: RoundReport::single("global-gather", rounds),
        charged: None,
        params: TransformParams { n: g.node_count(), g_value: 0.0, k: 0, a: 1, rho: 1 },
        stats: TransformStats { max_gather_rounds: rounds, ..TransformStats::default() },
        valid,
    }
}

/// The trivial global-gather algorithm for `P2` problems.
pub fn gather_baseline_edge<P: Problem + EdgeSequential>(
    problem: &P,
    g: &Graph,
) -> TransformOutcome<P::Label> {
    let center = gather_center(g);
    let rounds = 2 * u64::from(eccentricity(g, center));
    let mut labeling = HalfEdgeLabeling::for_graph(g);
    let order: Vec<_> = g.edge_ids().collect();
    solve_edges_sequential(problem, g, &order, &mut labeling)
        .or_invariant("sequential process completes on valid instances");
    let valid = verify_graph(problem, g, &labeling).is_ok();
    TransformOutcome {
        labeling,
        executed: RoundReport::single("global-gather", rounds),
        charged: None,
        params: TransformParams { n: g.node_count(), g_value: 0.0, k: 0, a: 1, rho: 1 },
        stats: TransformStats { max_gather_rounds: rounds, ..TransformStats::default() },
        valid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_algos::MisAlgo;
    use treelocal_gen::{path, random_tree, star};
    use treelocal_problems::{classic, MaximalMatching, Mis};

    #[test]
    fn direct_baseline_is_valid() {
        let g = random_tree(150, 1);
        let out = direct_baseline(&Mis, &MisAlgo, &g);
        assert!(out.valid);
        let set = Mis.extract(&g, &out.labeling);
        assert!(classic::is_valid_mis(&g, &set));
    }

    #[test]
    fn direct_baseline_rounds_grow_with_degree() {
        // The star has Δ = n - 1: the direct algorithm pays for it.
        let small_delta = direct_baseline(&Mis, &MisAlgo, &path(64)).total_rounds();
        let big_delta = direct_baseline(&Mis, &MisAlgo, &star(64)).total_rounds();
        assert!(big_delta > small_delta, "star {big_delta} should beat path {small_delta}");
    }

    #[test]
    fn gather_baselines_are_valid_but_slow() {
        let g = path(120);
        let node = gather_baseline_node(&Mis, &g);
        assert!(node.valid);
        // Gathering at an end of a long path costs ~2n rounds.
        assert!(node.total_rounds() >= 200);
        let edge = gather_baseline_edge(&MaximalMatching, &g);
        assert!(edge.valid);
        let m = MaximalMatching.extract(&g, &edge.labeling);
        assert!(classic::is_valid_maximal_matching(&g, &m));
    }
}
