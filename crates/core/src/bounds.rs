//! Analytic evaluators for the paper's round-complexity bounds.
//!
//! The asymptotic regime of Theorem 3 — where `O(log^{12/13} n)` visibly
//! beats the `Ω(log n / log log n)` barrier — begins at astronomically
//! large `n` (the crossover of `log^{12/13} n` vs `log n / log log n`
//! requires `log log n ≫ log^{1/13} n`). No simulation reaches it, so the
//! E8 experiment *also* evaluates the exact bound formulas in log-space at
//! huge `n`, fitting the predicted exponents. These evaluators implement
//! the formulas of Theorems 12 and 15 with all `O(·)` constants set to 1;
//! they are clearly labeled as model predictions in EXPERIMENTS.md.

use crate::g_solver::solve_log2_g;

/// `log* 2^x` (iterated logarithm given the base-2 log of the argument).
fn log_star_of_log2(mut x: f64) -> f64 {
    // One application of log2 maps 2^x to x.
    let mut k = 1.0;
    while x > 1.0 {
        x = x.log2();
        k += 1.0;
    }
    k
}

/// The Theorem 12 bound on trees, `f(g(n)) + log_{g(n)} n + log* n`,
/// evaluated at `n = 2^{log2_n}` for `f` given in log-space
/// (`f_of_log(x) = f(2^x)`).
///
/// Note `log_{g} n = f(g)` by the definition of `g`, so this equals
/// `2·f(g(n)) + log* n`.
pub fn tree_bound_log2(log2_n: f64, f_of_log: impl Fn(f64) -> f64) -> f64 {
    let lg = solve_log2_g(log2_n, &f_of_log);
    let f_g = f_of_log(lg);
    let decomposition = log2_n / lg.max(1e-12);
    f_g + decomposition + log_star_of_log2(log2_n)
}

/// The Theorem 15 bound,
/// `a + 10·log_{k/a} n + ρ·f(g^ρ)/(ρ − log_g a) + log* n` with `k = g^ρ`,
/// evaluated in log-space.
///
/// # Panics
///
/// Panics unless `ρ > log_g a` (the theorem's `a ≤ g^ρ/5` regime).
pub fn arb_bound_log2(log2_n: f64, a: f64, rho: f64, f_of_log: impl Fn(f64) -> f64) -> f64 {
    let lg = solve_log2_g(log2_n, &f_of_log);
    let log_g_a = a.log2() / lg.max(1e-12);
    assert!(rho > log_g_a, "Theorem 15 needs rho > log_g(a): rho = {rho}, log_g(a) = {log_g_a}");
    let f_at_k = f_of_log(rho * lg);
    let solve_term = rho * f_at_k / (rho - log_g_a);
    // Decomposition: 10·log_{k/a} n rounds, k = g^ρ.
    let log2_k_over_a = (rho * lg - a.log2()).max(1e-12);
    let decomposition = 10.0 * log2_n / log2_k_over_a;
    a + decomposition + solve_term + log_star_of_log2(log2_n)
}

/// The `Ω(log n / log log n)` lower-bound curve for MIS and maximal
/// matching on trees \[BBH+21, BBKO22a\], used as the separation reference
/// in E8.
pub fn mis_lower_bound_log2(log2_n: f64) -> f64 {
    log2_n / log2_n.max(2.0).log2()
}

/// Fits the exponent `β` of `rounds ≈ c·(log n)^β` over a series of
/// `(log2_n, value)` samples by least squares in log-log space.
pub fn fit_log_exponent(samples: &[(f64, f64)]) -> f64 {
    assert!(samples.len() >= 2, "need at least two samples");
    let xs: Vec<f64> = samples.iter().map(|&(l, _)| l.ln()).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, v)| v.ln()).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbko_log(x: f64) -> f64 {
        x.max(1e-12).powi(12)
    }

    #[test]
    fn theorem3_tree_bound_has_exponent_12_over_13() {
        let samples: Vec<(f64, f64)> = [1e3, 1e4, 1e5, 1e6, 1e7]
            .iter()
            .map(|&l2n| (l2n, tree_bound_log2(l2n, bbko_log)))
            .collect();
        let beta = fit_log_exponent(&samples);
        assert!(
            (beta - 12.0 / 13.0).abs() < 0.02,
            "fitted exponent {beta} vs 12/13 = {}",
            12.0 / 13.0
        );
    }

    #[test]
    fn theorem3_beats_mis_barrier_asymptotically() {
        // The crossover needs log log n < log^{1/13} n, i.e. log n beyond
        // ~10^30. At n = 2^(10^40), log^{12/13} n is firmly below the
        // barrier.
        let l2n = 1e40;
        let edge = tree_bound_log2(l2n, bbko_log);
        let mis = mis_lower_bound_log2(l2n);
        assert!(edge < mis, "separation: edge coloring {edge} should beat MIS barrier {mis}");
        // ... and at small n the barrier is lower (a crossover exists).
        let l2n_small = 100.0;
        assert!(tree_bound_log2(l2n_small, bbko_log) > mis_lower_bound_log2(l2n_small));
    }

    #[test]
    fn linear_f_gives_log_over_loglog_shape() {
        // f(Δ) = Δ: the tree bound is Θ(log n / log log n); the fitted
        // exponent against log n approaches 1 from below (≈ 1 - 1/ln L).
        let f = |x: f64| x.exp2();
        let samples: Vec<(f64, f64)> =
            [1e4, 1e5, 1e6, 1e7].iter().map(|&l| (l, tree_bound_log2(l, f))).collect();
        let beta = fit_log_exponent(&samples);
        assert!(beta > 0.85 && beta < 1.0, "beta {beta}");
    }

    #[test]
    fn arb_bound_tree_case_matches_tree_bound_shape() {
        // a = 1, ρ = 1: same asymptotics as the tree bound (constants
        // differ by the decomposition factor 10).
        for l2n in [1e4, 1e6] {
            let t = tree_bound_log2(l2n, bbko_log);
            let arb = arb_bound_log2(l2n, 1.0, 1.0, bbko_log);
            assert!(arb >= t);
            assert!(arb <= 12.0 * t, "l2n {l2n}: {arb} vs {t}");
        }
    }

    #[test]
    fn arb_bound_grows_with_a() {
        let l2n = 1e5;
        let b1 = arb_bound_log2(l2n, 1.0, 2.0, bbko_log);
        let b4 = arb_bound_log2(l2n, 4.0, 2.0, bbko_log);
        let b16 = arb_bound_log2(l2n, 16.0, 2.0, bbko_log);
        assert!(b1 <= b4 && b4 <= b16);
    }

    #[test]
    #[should_panic(expected = "rho > log_g")]
    fn arb_bound_rejects_out_of_regime() {
        // Enormous a at tiny n: log_g(a) exceeds rho.
        let _ = arb_bound_log2(10.0, 1e9, 1.0, |x| x.max(1e-12).powi(12));
    }

    #[test]
    fn exponent_fitting_recovers_known_slopes() {
        let samples: Vec<(f64, f64)> =
            (1..10).map(|i| (i as f64 * 100.0, (i as f64 * 100.0).powf(0.75) * 3.0)).collect();
        let beta = fit_log_exponent(&samples);
        assert!((beta - 0.75).abs() < 1e-9);
    }
}
