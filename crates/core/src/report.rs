//! Transformation run reports: parameters, per-phase rounds, structural
//! statistics and validity.

use treelocal_problems::HalfEdgeLabeling;
use treelocal_sim::RoundReport;

/// The parameters a transformation run chose.
#[derive(Clone, Debug)]
pub struct TransformParams {
    /// Instance size.
    pub n: usize,
    /// The solution of `g^{f(g)} = n` for the used complexity function.
    pub g_value: f64,
    /// The decomposition degree parameter actually used
    /// (`⌊g⌋` or `⌊g^ρ⌋`, clamped to validity).
    pub k: usize,
    /// Arboricity bound (1 on trees).
    pub a: usize,
    /// Theorem 15's `ρ` exponent (1 for the tree pipeline).
    pub rho: u32,
}

/// Structural statistics of a run, for the experiment tables.
#[derive(Clone, Debug, Default)]
pub struct TransformStats {
    /// Decomposition iterations executed.
    pub decomposition_iterations: u32,
    /// Max degree of the sub-instance handed to the truly local algorithm
    /// (Lemma 10 / Lemma 14 bound this by `k`).
    pub sub_max_degree: usize,
    /// Number of residual components solved by gathering.
    pub residual_components: usize,
    /// Largest gather cost (2·eccentricity) over residual components.
    pub max_gather_rounds: u64,
    /// Number of sequential star-forest groups (Theorem 15 only).
    pub star_groups: usize,
}

/// The complete outcome of a transformation run.
#[derive(Clone, Debug)]
pub struct TransformOutcome<L> {
    /// The assembled half-edge labeling (a full solution of `Π`).
    pub labeling: HalfEdgeLabeling<L>,
    /// Honest measured rounds, by phase.
    pub executed: RoundReport,
    /// Round accounting under a literature complexity model for the inner
    /// algorithm, when one was attached (see DESIGN.md §4).
    pub charged: Option<RoundReport>,
    /// Chosen parameters.
    pub params: TransformParams,
    /// Structural statistics.
    pub stats: TransformStats,
    /// Whether the final labeling verified against `Π` on the whole
    /// instance.
    pub valid: bool,
}

impl<L> TransformOutcome<L> {
    /// Total executed rounds.
    pub fn total_rounds(&self) -> u64 {
        self.executed.total()
    }

    /// Total charged rounds, if a model was attached.
    pub fn total_charged(&self) -> Option<u64> {
        self.charged.as_ref().map(RoundReport::total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_totals() {
        let mut executed = RoundReport::new();
        executed.push("a", 5).push("b", 7);
        let outcome: TransformOutcome<u32> = TransformOutcome {
            labeling: HalfEdgeLabeling::new(0),
            executed,
            charged: Some(RoundReport::single("model", 3)),
            params: TransformParams { n: 10, g_value: 2.0, k: 2, a: 1, rho: 1 },
            stats: TransformStats::default(),
            valid: true,
        };
        assert_eq!(outcome.total_rounds(), 12);
        assert_eq!(outcome.total_charged(), Some(3));
    }
}
