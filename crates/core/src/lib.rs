//! The Brandt–Narayanan transformation (PODC 2025): from truly local
//! complexity to (near-)optimal deterministic LOCAL algorithms on trees
//! and bounded-arboricity graphs.
//!
//! This crate is the paper's primary contribution, executable:
//!
//! * [`solve_g`] / [`solve_log2_g`] — the parameter equation
//!   `g(n)^{f(g(n))} = n`,
//! * [`TreeTransform`] — Theorem 12 (the formal Theorem 1): any
//!   `O(f(Δ) + log* n)` algorithm for a `P1` problem becomes an
//!   `O(f(g(n)) + log* n)` algorithm on trees,
//! * [`ArbTransform`] — Theorem 15 (the formal Theorem 2): the dual for
//!   `P2` problems on graphs of arboricity ≤ `a`,
//! * Theorem 3 entry points ([`edge_coloring_on_tree`],
//!   [`matching_on_tree`], [`mis_on_tree`], [`coloring_on_tree`]),
//! * baselines ([`direct_baseline`], [`gather_baseline_node`],
//!   [`gather_baseline_edge`]) and analytic bound evaluators
//!   ([`tree_bound_log2`], [`arb_bound_log2`]) for the experiments.
//!
//! # Examples
//!
//! ```
//! use treelocal_core::{mis_on_tree, TreeTransform};
//! use treelocal_gen::random_tree;
//! use treelocal_problems::classic;
//!
//! let tree = random_tree(1000, 1);
//! let (outcome, set) = mis_on_tree(&tree);
//! assert!(outcome.valid);
//! assert!(classic::is_valid_mis(&tree, &set));
//! println!("{}", outcome.executed); // per-phase round breakdown
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arb_transform;
mod baselines;
mod bounds;
mod g_solver;
mod report;
mod theorem3;
mod tree_transform;

pub use arb_transform::ArbTransform;
pub use baselines::{direct_baseline, gather_baseline_edge, gather_baseline_node};
pub use bounds::{arb_bound_log2, fit_log_exponent, mis_lower_bound_log2, tree_bound_log2};
pub use g_solver::{k_for, solve_g, solve_log2_g, transformed_complexity_log2};
pub use report::{TransformOutcome, TransformParams, TransformStats};
pub use theorem3::{
    coloring_on_tree, edge_coloring_bounded_arboricity, edge_coloring_on_tree, matching_on_tree,
    mis_on_tree,
};
pub use tree_transform::TreeTransform;
