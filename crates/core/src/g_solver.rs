//! Solving `g(n)^{f(g(n))} = n` — the parameter equation at the heart of
//! the transformation.
//!
//! Taking logarithms, `g` is the unique solution of
//! `f(g) · log₂(g) = log₂(n)`; existence and uniqueness follow from `f`
//! being continuous, monotonically non-decreasing and non-zero (footnotes
//! 6–7 of the paper). The solver works in log-space so the experiment
//! harness can evaluate the asymptotic bounds at astronomically large `n`
//! (e.g. `n = 2^{10000}`) without overflow.
//!
//! Worked examples from the paper:
//! * `f(Δ) = Δ` (MIS, maximal matching): `g(n) = Θ(log n / log log n)`,
//!   and `f(g(n)) = Θ(log n / log log n)` — the tight tree bound.
//! * `f(Δ) = log^{12} Δ` (BBKO22b edge coloring): `f(g(n)) =
//!   Θ(log^{12/13} n)` — Theorem 3.

/// Solves `f(g) · log₂ g = log₂ n` for `log₂ g`, given `log₂ n` and `f`
/// expressed in log-space (`f_of_log(x) = f(2^x)`).
///
/// Returns a value in `[lo, log₂ n]` where `lo` is a small positive floor;
/// if even `g = n` cannot satisfy the equation (pathologically small `f`),
/// the upper end is returned.
///
/// # Panics
///
/// Panics if `log2_n` is not positive and finite.
pub fn solve_log2_g(log2_n: f64, f_of_log: impl Fn(f64) -> f64) -> f64 {
    assert!(log2_n.is_finite() && log2_n > 0.0, "need log2(n) > 0, got {log2_n}");
    let h = |lg: f64| f_of_log(lg) * lg;
    let mut lo = 1e-9;
    let mut hi = log2_n.max(lo * 2.0);
    if h(hi) <= log2_n {
        return hi;
    }
    if h(lo) >= log2_n {
        return lo;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if h(mid) < log2_n {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Solves `g^{f(g)} = n` directly for moderate `n` (fits in `f64`).
pub fn solve_g(n: f64, f: impl Fn(f64) -> f64) -> f64 {
    assert!(n.is_finite() && n >= 2.0, "need n >= 2, got {n}");
    let lg = solve_log2_g(n.log2(), |x| f(x.exp2()));
    lg.exp2()
}

/// The decomposition parameter `k` used by the transforms: `⌊g(n)⌋`
/// clamped to at least 2 (rake-and-compress needs `k ≥ 2`).
pub fn k_for(n: usize, f: impl Fn(f64) -> f64) -> usize {
    if n < 4 {
        return 2;
    }
    let g = solve_g(n as f64, f);
    (g.floor() as usize).max(2)
}

/// The transformed complexity `f(g(n))` — the headline quantity of
/// Theorems 1 and 2, computed in log-space for huge `n`.
pub fn transformed_complexity_log2(log2_n: f64, f_of_log: impl Fn(f64) -> f64) -> f64 {
    let lg = solve_log2_g(log2_n, &f_of_log);
    f_of_log(lg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_f_gives_log_over_loglog() {
        // f(Δ) = Δ: g satisfies g · log g = log n, so f(g) = g ≈
        // log n / log log n.
        for l2n in [64.0, 1024.0, 1_048_576.0] {
            let got = transformed_complexity_log2(l2n, |lg| lg.exp2());
            let expected = l2n / l2n.log2();
            assert!(
                (got / expected - 1.0).abs() < 0.6,
                "l2n {l2n}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn log12_f_gives_exponent_12_over_13() {
        // f(Δ) = log^12 Δ: f(g(n)) = Θ(log^{12/13} n). Fit the exponent on
        // a sweep of huge n.
        let f = |lg: f64| lg.max(1e-12).powi(12);
        let mut exps = Vec::new();
        let mut prev: Option<(f64, f64)> = None;
        for e in [1_000.0f64, 10_000.0, 100_000.0, 1_000_000.0] {
            let v = transformed_complexity_log2(e, f);
            if let Some((pe, pv)) = prev {
                let slope = (v.ln() - pv.ln()) / (e.ln() - pe.ln());
                exps.push(slope);
            }
            prev = Some((e, v));
        }
        for slope in exps {
            assert!(
                (slope - 12.0 / 13.0).abs() < 0.02,
                "fitted exponent {slope} should be ~{}",
                12.0 / 13.0
            );
        }
    }

    #[test]
    fn solve_g_satisfies_equation() {
        let f = |d: f64| d + 1.0;
        for n in [16.0, 1e4, 1e9, 1e15] {
            let g = solve_g(n, f);
            let lhs = f(g) * g.log2();
            assert!((lhs / n.log2() - 1.0).abs() < 1e-6, "n {n}: lhs {lhs}");
        }
    }

    #[test]
    fn g_is_monotone_in_n() {
        let f = |d: f64| (d + 1.0) * (d + 4.0).log2();
        let mut prev = 0.0;
        for e in 2..40 {
            let g = solve_g((1u64 << e) as f64, f);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    fn k_for_realistic_sizes() {
        // MIS-style f: k stays small but grows with n.
        let f = |d: f64| (d + 1.0) * (d + 4.0).log2();
        let k1k = k_for(1_000, f);
        let k1m = k_for(1_000_000, f);
        assert!(k1k >= 2);
        assert!(k1m >= k1k);
        assert!(k1m <= 64, "k(1e6) unexpectedly large: {k1m}");
        assert_eq!(k_for(2, f), 2);
    }

    #[test]
    fn pathological_f_clamps() {
        // Tiny f: g runs to the upper end.
        let lg = solve_log2_g(100.0, |_| 1e-6);
        assert!(lg >= 99.0);
        // Huge f: g clamps to the floor.
        let lg = solve_log2_g(100.0, |_| 1e12);
        assert!(lg <= 1e-6);
    }
}
