//! LOCAL identifier assignment strategies.
//!
//! The LOCAL model gives every node a globally unique identifier from
//! `{1, ..., n^c}`. Deterministic algorithms (Linial color reduction,
//! Cole–Vishkin) consume these identifiers, so the *assignment* is part of
//! the workload. Generators default to sequential identifiers; experiments
//! exercising the `log*` machinery use permuted or sparse assignments.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use treelocal_graph::OrInvariant;
use treelocal_graph::{widen_u64, Graph};

/// How LOCAL identifiers are assigned to nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdStrategy {
    /// Node `i` gets identifier `i + 1`.
    Sequential,
    /// A pseudorandom permutation of `{1, ..., n}`.
    Permuted {
        /// Seed for the permutation.
        seed: u64,
    },
    /// Distinct pseudorandom identifiers from `{1, ..., n^2}` — a "sparse"
    /// identifier space exercising larger initial color counts.
    Sparse {
        /// Seed for the sampling.
        seed: u64,
    },
    /// Adversarial for bitwise color reduction: identifiers alternate
    /// between the low and high end of `{1, ..., n}` along the node order.
    Alternating,
}

/// Produces `n` distinct positive identifiers per the strategy.
pub fn assign_ids(n: usize, strategy: IdStrategy) -> Vec<u64> {
    match strategy {
        IdStrategy::Sequential => (1..=widen_u64(n)).collect(),
        IdStrategy::Permuted { seed } => {
            let mut ids: Vec<u64> = (1..=widen_u64(n)).collect();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x05ee_d1d5);
            ids.shuffle(&mut rng);
            ids
        }
        IdStrategy::Sparse { seed } => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x05ee_d2d5);
            let space = widen_u64(n).saturating_mul(widen_u64(n)).max(widen_u64(n)) + 1;
            let mut chosen = std::collections::BTreeSet::new();
            while chosen.len() < n {
                chosen.insert(rng.gen_range(1..space));
            }
            let mut ids: Vec<u64> = chosen.into_iter().collect();
            // Shuffle so identifier magnitude is uncorrelated with index.
            ids.shuffle(&mut rng);
            ids
        }
        IdStrategy::Alternating => {
            let mut ids = Vec::with_capacity(n);
            let (mut lo, mut hi) = (1u64, widen_u64(n));
            for i in 0..n {
                if i % 2 == 0 {
                    ids.push(lo);
                    lo += 1;
                } else {
                    ids.push(hi);
                    hi -= 1;
                }
            }
            ids
        }
    }
}

/// Rebuilds a graph with identifiers reassigned per the strategy.
///
/// # Panics
///
/// Panics only if the original graph was malformed, which [`Graph`]
/// construction already prevents.
pub fn relabel(g: &Graph, strategy: IdStrategy) -> Graph {
    // Stream the graph's own endpoint records back through the builder —
    // no intermediate edge list, just the new identifier table.
    let ids = assign_ids(g.node_count(), strategy);
    Graph::from_edge_source_with_ids(&g.edge_source(), ids)
        .or_invariant("relabeling a valid graph stays valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_distinct(ids: &[u64]) -> bool {
        let mut s = ids.to_vec();
        s.sort_unstable();
        s.windows(2).all(|w| w[0] != w[1])
    }

    #[test]
    fn sequential_ids() {
        assert_eq!(assign_ids(4, IdStrategy::Sequential), vec![1, 2, 3, 4]);
    }

    #[test]
    fn permuted_ids_are_a_permutation() {
        let ids = assign_ids(100, IdStrategy::Permuted { seed: 7 });
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=100).collect::<Vec<u64>>());
        assert_ne!(ids, (1..=100).collect::<Vec<u64>>(), "seed 7 should shuffle");
    }

    #[test]
    fn permuted_is_deterministic_in_seed() {
        let a = assign_ids(50, IdStrategy::Permuted { seed: 1 });
        let b = assign_ids(50, IdStrategy::Permuted { seed: 1 });
        let c = assign_ids(50, IdStrategy::Permuted { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_ids_distinct_and_bounded() {
        let n = 64;
        let ids = assign_ids(n, IdStrategy::Sparse { seed: 3 });
        assert_eq!(ids.len(), n);
        assert!(all_distinct(&ids));
        assert!(ids.iter().all(|&x| x >= 1 && x <= widen_u64(n * n)));
    }

    #[test]
    fn alternating_ids() {
        assert_eq!(assign_ids(5, IdStrategy::Alternating), vec![1, 5, 2, 4, 3]);
        assert!(all_distinct(&assign_ids(17, IdStrategy::Alternating)));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = relabel(&g, IdStrategy::Permuted { seed: 5 });
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.edge_count(), 3);
        for e in g.edge_ids() {
            assert_eq!(g.endpoints(e), h.endpoints(e));
        }
    }
}
