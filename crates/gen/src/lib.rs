//! Deterministic workload generators for the `treelocal` experiments.
//!
//! Everything is seeded and reproducible. Provided families:
//!
//! * [`random_tree`] — uniformly random labeled trees, decoded by the
//!   streaming [`PruferEdges`] source (no materialized edge list),
//! * [`balanced_regular_tree`] — the paper's lower-bound instances
//!   (footnote 11 variant that exists for every `n`),
//! * structured trees: [`path`], [`star`], [`caterpillar`], [`spider`],
//!   [`broom`], [`complete_binary_tree`],
//! * bounded-arboricity graphs: [`random_arboricity_graph`] (forest
//!   unions), [`grid`], [`triangulated_grid`], [`random_forest`],
//! * identifier strategies: [`IdStrategy`], [`assign_ids`], [`relabel`].
//!
//! # Examples
//!
//! ```
//! use treelocal_gen::{random_tree, relabel, IdStrategy};
//!
//! let t = random_tree(1000, 7);
//! let t = relabel(&t, IdStrategy::Permuted { seed: 7 });
//! assert!(treelocal_graph::is_tree(&t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arb;
mod ids;
mod prufer;
mod shapes;

pub use arb::{
    arboricity_suite, grid, random_arboricity_graph, random_forest, triangulated_grid,
    KnownArboricity,
};
pub use ids::{assign_ids, relabel, IdStrategy};
pub use prufer::{decode_prufer, random_tree, PruferEdges};
pub use shapes::{
    balanced_regular_tree, balanced_regular_tree_of_depth, broom, caterpillar,
    complete_binary_tree, path, spider, star,
};

/// A named collection of tree workloads at size roughly `n`, spanning the
/// shapes the experiments sweep over.
pub fn tree_suite(n: usize, seed: u64) -> Vec<(String, treelocal_graph::Graph)> {
    let mut v = vec![
        ("random".to_string(), random_tree(n, seed)),
        ("path".to_string(), path(n)),
        ("balanced-d3".to_string(), balanced_regular_tree(3, n)),
        ("balanced-d8".to_string(), balanced_regular_tree(8, n)),
    ];
    let spine = (n / 4).max(1);
    v.push(("caterpillar".to_string(), caterpillar(spine, 3)));
    if n >= 9 {
        let legs = n.isqrt();
        v.push(("spider".to_string(), spider(legs, (n - 1) / legs.max(1))));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_graph::is_tree;

    #[test]
    fn tree_suite_members_are_trees() {
        for (name, g) in tree_suite(64, 1) {
            assert!(is_tree(&g), "{name} is not a tree");
            assert!(g.node_count() >= 16, "{name} too small: {}", g.node_count());
        }
    }
}
