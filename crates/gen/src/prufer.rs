//! Uniformly random labeled trees via Prüfer sequences.
//!
//! A uniformly random sequence in `{0, ..., n-1}^{n-2}` decodes to a
//! uniformly random labeled tree on `n` nodes (Cayley's bijection). The
//! decoder below is the linear-time pointer variant, packaged as a
//! streaming [`EdgeSource`]: the only stored state is the u32 sequence
//! itself (4 bytes per node), and each pass re-runs the decoder with a
//! transient u32 degree table — no edge list is ever materialized.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treelocal_graph::{narrow_u32, widen_u32, EdgeSource, Graph, OrInvariant};

/// Runs the pointer-variant Prüfer decoder over `seq`, emitting the
/// `n - 1` tree edges in decode order. Callers have validated `seq`.
fn stream_decode(n: usize, seq: &[u32], emit: &mut dyn FnMut(usize, usize)) {
    debug_assert!(n >= 2 && seq.len() == n - 2);
    let mut degree = vec![1u32; n];
    for &x in seq {
        degree[widen_u32(x)] += 1;
    }
    // `ptr` scans for the smallest leaf; `leaf` tracks the current leaf,
    // possibly below `ptr` when removing an entry creates a smaller leaf.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in seq {
        let x = widen_u32(x);
        emit(leaf, x);
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    emit(leaf, n - 1);
}

/// A Prüfer sequence as a rewindable [`EdgeSource`]: the tree's `n - 1`
/// edges stream out of the pointer decoder on demand. The sequence is the
/// only stored state — 4 bytes per node, versus the 16 bytes per edge a
/// materialized list would cost.
#[derive(Clone, Debug)]
pub struct PruferEdges {
    n: usize,
    seq: Vec<u32>,
}

impl PruferEdges {
    /// Wraps a validated Prüfer sequence over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `seq.len() != n - 2`, or any entry is `>= n`.
    pub fn new(n: usize, seq: Vec<u32>) -> Self {
        assert!(n >= 2, "Prüfer decoding needs n >= 2");
        assert_eq!(seq.len(), n - 2, "sequence length must be n - 2");
        assert!(seq.iter().all(|&x| widen_u32(x) < n), "sequence entries must be < n");
        PruferEdges { n, seq }
    }

    /// A uniformly random sequence over `n` nodes (`n >= 2`), i.e. a
    /// uniformly random labeled tree.
    pub fn uniform(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "Prüfer decoding needs n >= 2");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7275_6665);
        let seq: Vec<u32> = (0..n - 2).map(|_| narrow_u32(rng.gen_range(0..n))).collect();
        PruferEdges { n, seq }
    }
}

impl EdgeSource for PruferEdges {
    fn node_count(&self) -> usize {
        self.n
    }

    fn edge_count(&self) -> usize {
        self.n - 1
    }

    fn stream(&self, emit: &mut dyn FnMut(usize, usize)) {
        stream_decode(self.n, &self.seq, emit);
    }
}

/// Decodes a Prüfer sequence into the edge list of the corresponding tree
/// — the thin materializing wrapper over the streaming decoder, kept for
/// tests and small instances.
///
/// # Panics
///
/// Panics if `seq.len() + 2` does not fit the implied node count or any
/// entry is out of range.
pub fn decode_prufer(n: usize, seq: &[usize]) -> Vec<(usize, usize)> {
    assert!(n >= 2, "Prüfer decoding needs n >= 2");
    assert_eq!(seq.len(), n - 2, "sequence length must be n - 2");
    assert!(seq.iter().all(|&x| x < n), "sequence entries must be < n");
    let narrowed: Vec<u32> = seq.iter().map(|&x| narrow_u32(x)).collect();
    PruferEdges { n, seq: narrowed }.materialize()
}

/// A uniformly random labeled tree on `n` nodes (`n ≥ 1`), built by
/// streaming the decoder straight into the graph's compact records.
///
/// # Examples
///
/// ```
/// use treelocal_gen::random_tree;
/// let t = random_tree(100, 42);
/// assert!(treelocal_graph::is_tree(&t));
/// ```
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1, "tree needs at least one node");
    if n == 1 {
        return Graph::from_edges(1, &[]).or_invariant("single node");
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).or_invariant("edge");
    }
    Graph::from_edge_source(&PruferEdges::uniform(n, seed))
        .or_invariant("Prüfer decoding yields a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use treelocal_graph::is_tree;

    #[test]
    fn decode_known_sequence() {
        // Classic example: seq = [3, 3, 3, 4] over n = 6 gives a tree where
        // node 3 has degree 4.
        let edges = decode_prufer(6, &[3, 3, 3, 4]);
        let g = Graph::from_edges(6, &edges).unwrap();
        assert!(is_tree(&g));
        assert_eq!(g.degree(treelocal_graph::NodeId::new(3)), 4);
    }

    #[test]
    fn all_sequences_of_small_n_decode_to_trees() {
        // n = 5: all 125 sequences decode to valid (and distinct) trees.
        let n = 5;
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let edges = decode_prufer(n, &[a, b, c]);
                    let g = Graph::from_edges(n, &edges).unwrap();
                    assert!(is_tree(&g), "seq {:?}", (a, b, c));
                    let mut canon: Vec<(usize, usize)> =
                        edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
                    canon.sort_unstable();
                    seen.insert(canon);
                }
            }
        }
        // Cayley: 5^3 = 125 labeled trees on 5 nodes, all distinct.
        assert_eq!(seen.len(), 125);
    }

    #[test]
    fn prufer_source_is_rewindable() {
        let src = PruferEdges::uniform(40, 6);
        assert_eq!(src.node_count(), 40);
        assert_eq!(src.edge_count(), 39);
        let first = src.materialize();
        assert_eq!(first.len(), 39);
        // A second pass replays the identical stream.
        assert_eq!(src.materialize(), first);
    }

    #[test]
    fn streamed_tree_matches_materialized_decode() {
        // The streamed build and the classic decode-then-build path must
        // produce slot-identical graphs (edge ids in decode order).
        let src = PruferEdges::uniform(120, 17);
        let streamed = Graph::from_edge_source(&src).unwrap();
        let via_vec = Graph::from_edges(120, &src.materialize()).unwrap();
        for e in via_vec.edge_ids() {
            assert_eq!(streamed.endpoints(e), via_vec.endpoints(e));
        }
        for v in via_vec.node_ids() {
            assert_eq!(streamed.neighbor_nodes(v), via_vec.neighbor_nodes(v));
        }
    }

    #[test]
    fn random_trees_are_trees() {
        for n in [1usize, 2, 3, 10, 100, 1000] {
            for seed in 0..3 {
                assert!(is_tree(&random_tree(n, seed)), "n {n} seed {seed}");
            }
        }
    }

    #[test]
    fn random_tree_deterministic_in_seed() {
        let a = random_tree(50, 9);
        let b = random_tree(50, 9);
        let ea: Vec<_> = a.edge_ids().map(|e| a.endpoints(e)).collect();
        let eb: Vec<_> = b.edge_ids().map(|e| b.endpoints(e)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn degree_distribution_is_plausible() {
        // In a uniform random tree the expected number of leaves is ~ n/e.
        let n = 2000;
        let g = random_tree(n, 123);
        let leaves = g.node_ids().filter(|&v| g.degree(v) == 1).count();
        let ratio = leaves as f64 / n as f64;
        assert!((0.30..0.44).contains(&ratio), "leaf ratio {ratio}");
        // Max degree of a random tree is O(log n / log log n); allow slack.
        assert!(g.max_degree() < 30, "max degree {}", g.max_degree());
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for v in g.node_ids() {
            *hist.entry(g.degree(v)).or_default() += 1;
        }
        assert!(hist.len() > 3, "degenerate degree histogram {hist:?}");
    }
}
