//! Bounded-arboricity workloads: forest unions, grids and triangulated
//! grids.
//!
//! Theorem 2 / Theorem 15 of the paper applies to graphs of arboricity at
//! most `a`; these generators produce such graphs *with the bound known by
//! construction* (the paper likewise assumes `a` is known to the nodes).
//!
//! The grid families stream their edges arithmetically ([`FnEdgeSource`]);
//! the random families decode Prüfer sequences on the fly
//! ([`PruferEdges`]), keeping at most one compact u32 pair per *kept* edge
//! in memory.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treelocal_graph::{narrow_u32, widen_u32, EdgeSource, FnEdgeSource, Graph, OrInvariant};

use crate::prufer::PruferEdges;

/// A random graph of arboricity at most `a`: the union of `a` independent
/// uniformly random spanning trees on the same `n` nodes (duplicate edges
/// collapse, which can only lower the arboricity).
///
/// # Examples
///
/// ```
/// use treelocal_gen::random_arboricity_graph;
/// use treelocal_graph::degeneracy;
/// let g = random_arboricity_graph(200, 3, 1);
/// // Degeneracy ≤ 2a - 1 for arboricity-a graphs.
/// assert!(degeneracy(&g).degeneracy <= 5);
/// ```
pub fn random_arboricity_graph(n: usize, a: usize, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!(a >= 1, "arboricity bound must be positive");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa2b0_c1d7);
    // Canonical (min, max) pairs as compact u32 records; sort + dedup
    // replaces the old BTreeSet at half the bytes and none of the nodes.
    let mut canon: Vec<(u32, u32)> = Vec::new();
    for _ in 0..a {
        let seq: Vec<u32> =
            (0..n.saturating_sub(2)).map(|_| narrow_u32(rng.gen_range(0..n))).collect();
        PruferEdges::new(n, seq).stream(&mut |u, v| {
            let (u, v) = (narrow_u32(u), narrow_u32(v));
            canon.push((u.min(v), u.max(v)));
        });
    }
    canon.sort_unstable();
    canon.dedup();
    let source = FnEdgeSource::new(n, canon.len(), |emit| {
        for &(u, v) in &canon {
            emit(widen_u32(u), widen_u32(v));
        }
    });
    Graph::from_edge_source(&source).or_invariant("union of trees is simple")
}

/// A random *forest* on `n` nodes with approximately `edge_fraction` of the
/// maximum `n - 1` edges (each spanning-tree edge kept independently).
pub fn random_forest(n: usize, edge_fraction: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&edge_fraction), "fraction in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf0e5_0123);
    if n < 2 {
        return Graph::from_edges(n, &[]).or_invariant("empty");
    }
    let seq: Vec<u32> = (0..n.saturating_sub(2)).map(|_| narrow_u32(rng.gen_range(0..n))).collect();
    // The filter consumes the rng *after* the sequence draws; snapshotting
    // its state here lets every replay of the stream redo the same coin
    // flips — SmallRng is Clone, so rewindability is a cheap state copy.
    let source = ForestEdges::new(PruferEdges::new(n, seq), rng, edge_fraction);
    Graph::from_edge_source(&source).or_invariant("subset of tree edges is a forest")
}

/// A rewindable [`EdgeSource`] keeping each edge of a spanning tree
/// independently with probability `fraction`: each pass clones the
/// snapshotted rng state and replays the identical coin flips.
struct ForestEdges {
    tree: PruferEdges,
    rng: SmallRng,
    fraction: f64,
    kept: usize,
}

impl ForestEdges {
    fn new(tree: PruferEdges, rng: SmallRng, fraction: f64) -> Self {
        let mut probe = ForestEdges { tree, rng, fraction, kept: 0 };
        // One counting pass pins the exact edge count the contract needs.
        let mut kept = 0usize;
        probe.stream(&mut |_u, _v| kept += 1);
        probe.kept = kept;
        probe
    }
}

impl EdgeSource for ForestEdges {
    fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    fn edge_count(&self) -> usize {
        self.kept
    }

    fn stream(&self, emit: &mut dyn FnMut(usize, usize)) {
        let mut rng = self.rng.clone();
        self.tree.stream(&mut |u, v| {
            if rng.gen_bool(self.fraction) {
                emit(u, v);
            }
        });
    }
}

/// An `r × c` grid graph (planar; arboricity 2 for `r, c ≥ 2`).
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let id = |r: usize, c: usize| r * cols + c;
    let m = rows * (cols - 1) + (rows - 1) * cols;
    let source = FnEdgeSource::new(rows * cols, m, |emit| {
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    emit(id(r, c), id(r, c + 1));
                }
                if r + 1 < rows {
                    emit(id(r, c), id(r + 1, c));
                }
            }
        }
    });
    Graph::from_edge_source(&source).or_invariant("grid is simple")
}

/// An `r × c` grid with one diagonal per cell (planar triangulation-like;
/// arboricity ≤ 3).
pub fn triangulated_grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let id = |r: usize, c: usize| r * cols + c;
    let m = rows * (cols - 1) + (rows - 1) * cols + (rows - 1) * (cols - 1);
    let source = FnEdgeSource::new(rows * cols, m, |emit| {
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    emit(id(r, c), id(r, c + 1));
                }
                if r + 1 < rows {
                    emit(id(r, c), id(r + 1, c));
                }
                if r + 1 < rows && c + 1 < cols {
                    emit(id(r, c), id(r + 1, c + 1));
                }
            }
        }
    });
    Graph::from_edge_source(&source).or_invariant("triangulated grid is simple")
}

/// The arboricity bound each generator guarantees by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnownArboricity(pub usize);

/// A labeled bounded-arboricity workload (graph + its guaranteed bound).
pub fn arboricity_suite(n: usize, seed: u64) -> Vec<(String, Graph, KnownArboricity)> {
    let floor = n.isqrt();
    let side = floor + usize::from(floor * floor < n);
    vec![
        ("tree".into(), crate::prufer::random_tree(n, seed), KnownArboricity(1)),
        ("grid".into(), grid(side, side), KnownArboricity(2)),
        ("tri-grid".into(), triangulated_grid(side, side), KnownArboricity(3)),
        ("union-2".into(), random_arboricity_graph(n, 2, seed), KnownArboricity(2)),
        ("union-4".into(), random_arboricity_graph(n, 4, seed), KnownArboricity(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_graph::{degeneracy, forest_partition, is_forest, is_forest_partition};

    #[test]
    fn forest_union_respects_bound() {
        for a in 1..5 {
            let g = random_arboricity_graph(100, a, 7);
            // Degeneracy is at most 2a - 1 for arboricity ≤ a.
            assert!(
                degeneracy(&g).degeneracy < 2 * a,
                "a {a} degeneracy {}",
                degeneracy(&g).degeneracy
            );
            let fp = forest_partition(&g);
            assert!(is_forest_partition(&g, &fp));
        }
    }

    #[test]
    fn random_forest_is_forest() {
        for frac in [0.0, 0.3, 0.7, 1.0] {
            let g = random_forest(60, frac, 5);
            assert!(is_forest(&g));
        }
        let full = random_forest(60, 1.0, 5);
        assert_eq!(full.edge_count(), 59);
    }

    #[test]
    fn forest_source_replays_identical_coin_flips() {
        let mut rng = SmallRng::seed_from_u64(99);
        let seq: Vec<u32> = (0..38).map(|_| narrow_u32(rng.gen_range(0..40))).collect();
        let src = ForestEdges::new(PruferEdges::new(40, seq), rng, 0.5);
        let first = src.materialize();
        assert_eq!(first.len(), src.edge_count());
        assert_eq!(src.materialize(), first);
    }

    #[test]
    fn grid_structure() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
        assert!(degeneracy(&g).degeneracy <= 2);
    }

    #[test]
    fn triangulated_grid_structure() {
        let g = triangulated_grid(4, 4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 12 + 12 + 9);
        assert!(degeneracy(&g).degeneracy <= 4); // arboricity ≤ 3
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid(1, 1).node_count(), 1);
        assert_eq!(grid(1, 5).edge_count(), 4);
        assert_eq!(triangulated_grid(1, 3).edge_count(), 2);
    }

    #[test]
    fn suite_is_consistent() {
        for (name, g, KnownArboricity(a)) in arboricity_suite(49, 3) {
            assert!(g.node_count() >= 40, "{name}");
            assert!(
                degeneracy(&g).degeneracy <= 2 * a,
                "{name}: degeneracy {} vs a {a}",
                degeneracy(&g).degeneracy
            );
        }
    }

    #[test]
    fn union_graph_deterministic() {
        let a = random_arboricity_graph(80, 3, 11);
        let b = random_arboricity_graph(80, 3, 11);
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
