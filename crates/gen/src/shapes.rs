//! Structured tree families: paths, stars, caterpillars, spiders, brooms,
//! complete binary trees and the paper's balanced ∆-regular trees.
//!
//! The balanced regular trees are the instances on which the round
//! elimination lower bounds discussed in Section 1.1 of the paper already
//! hold; they are the canonical "hard" workloads for the experiments.
//!
//! Every shape here is pure arithmetic over the node index, so the edges
//! are described as replayable [`FnEdgeSource`] closures and streamed
//! straight into the graph's compact records — no edge list is ever
//! materialized, which is what lets the caterpillar family reach the
//! 100M-node tier.

use treelocal_graph::{widen_u32, FnEdgeSource, Graph, OrInvariant};

/// Streams a tree-shaped source (`n` nodes, exactly `n - 1` edges for
/// `n >= 1`) into a graph.
fn stream_tree(n: usize, f: impl Fn(&mut dyn FnMut(usize, usize))) -> Graph {
    Graph::from_edge_source(&FnEdgeSource::new(n, n.saturating_sub(1), f))
        .or_invariant("generator produced a valid simple graph")
}

/// A path on `n` nodes (`n ≥ 1`).
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least one node");
    stream_tree(n, |emit| {
        for i in 0..n - 1 {
            emit(i, i + 1);
        }
    })
}

/// A star with one center (node 0) and `n - 1` leaves (`n ≥ 1`).
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star needs at least one node");
    stream_tree(n, |emit| {
        for i in 1..n {
            emit(0, i);
        }
    })
}

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs`
/// pendant leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar needs a spine");
    let n = spine + spine * legs;
    stream_tree(n, |emit| {
        for i in 0..spine - 1 {
            emit(i, i + 1);
        }
        let mut next = spine;
        for s in 0..spine {
            for _ in 0..legs {
                emit(s, next);
                next += 1;
            }
        }
    })
}

/// A spider: `legs` paths of length `leg_len` joined at a center node.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    let n = 1 + legs * leg_len;
    stream_tree(n, |emit| {
        let mut next = 1;
        for _ in 0..legs {
            let mut prev = 0;
            for _ in 0..leg_len {
                emit(prev, next);
                prev = next;
                next += 1;
            }
        }
    })
}

/// A broom: a handle path of `handle` nodes whose last node carries
/// `bristles` extra leaves.
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(handle >= 1, "broom needs a handle");
    let n = handle + bristles;
    stream_tree(n, |emit| {
        for i in 0..handle - 1 {
            emit(i, i + 1);
        }
        for b in 0..bristles {
            emit(handle - 1, handle + b);
        }
    })
}

/// A complete binary tree with `depth` levels of edges (`depth = 0` is a
/// single node).
pub fn complete_binary_tree(depth: u32) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    stream_tree(n, |emit| {
        for v in 1..n {
            emit((v - 1) / 2, v);
        }
    })
}

/// The paper's balanced ∆-regular tree, adapted (footnote 11) so that it
/// exists for **every** node count `n`: nodes are added in BFS order, the
/// root receiving up to `delta` children and every other node up to
/// `delta - 1`, so every non-leaf above the last layer has degree exactly
/// `delta`.
///
/// # Panics
///
/// Panics if `delta < 2` and `n > 2` (no such tree exists).
pub fn balanced_regular_tree(delta: usize, n: usize) -> Graph {
    assert!(n >= 1, "tree needs at least one node");
    if n == 1 {
        return stream_tree(1, |_emit| {});
    }
    assert!(delta >= 1, "delta must be positive");
    if delta == 1 {
        assert!(n <= 2, "a 1-regular tree has at most 2 nodes");
        return path(n);
    }
    if delta == 2 {
        return path(n);
    }
    stream_tree(n, |emit| {
        // parent capacity: root takes `delta` children, others `delta - 1`.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0usize, delta));
        let mut next = 1usize;
        while next < n {
            let (p, cap) = queue.pop_front().or_invariant("capacity left while nodes remain");
            for _ in 0..cap {
                if next >= n {
                    break;
                }
                emit(p, next);
                queue.push_back((next, delta - 1));
                next += 1;
            }
        }
    })
}

/// The exact perfectly balanced ∆-regular tree of the given `depth`: every
/// non-leaf has degree `delta`, every leaf is at distance `depth` from the
/// root. Returns the number of nodes such a tree has alongside the graph.
pub fn balanced_regular_tree_of_depth(delta: usize, depth: u32) -> Graph {
    assert!(delta >= 2, "regular balanced trees need delta >= 2");
    if depth == 0 {
        return stream_tree(1, |_emit| {});
    }
    if delta == 2 {
        return path(2 * widen_u32(depth) + 1);
    }
    // n = 1 + delta * ((delta-1)^depth - 1) / (delta - 2)
    let mut layer = delta as u128;
    let mut n: u128 = 1 + layer;
    for _ in 1..depth {
        layer *= (delta - 1) as u128;
        n += layer;
    }
    let n = usize::try_from(n).or_invariant("tree too large");
    balanced_regular_tree(delta, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelocal_graph::{components, is_tree, NodeId};

    #[test]
    fn path_star_shapes() {
        assert!(is_tree(&path(10)));
        assert_eq!(path(10).max_degree(), 2);
        assert!(is_tree(&star(10)));
        assert_eq!(star(10).max_degree(), 9);
        assert!(is_tree(&path(1)));
        assert!(is_tree(&star(1)));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert!(is_tree(&g));
        assert_eq!(g.node_count(), 5 + 15);
        // Interior spine nodes have degree 2 + legs.
        assert_eq!(g.degree(NodeId::new(2)), 5);
    }

    #[test]
    fn spider_shape() {
        let g = spider(4, 3);
        assert!(is_tree(&g));
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.degree(NodeId::new(0)), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn broom_shape() {
        let g = broom(4, 6);
        assert!(is_tree(&g));
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(NodeId::new(3)), 7);
    }

    #[test]
    fn complete_binary_tree_shape() {
        let g = complete_binary_tree(4);
        assert!(is_tree(&g));
        assert_eq!(g.node_count(), 31);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(components(&g).count(), 1);
    }

    #[test]
    fn balanced_regular_tree_every_n() {
        for delta in [3usize, 4, 5, 8] {
            for n in 1..60 {
                let g = balanced_regular_tree(delta, n);
                assert!(is_tree(&g), "delta {delta} n {n}");
                assert!(g.max_degree() <= delta);
            }
        }
    }

    #[test]
    fn balanced_regular_tree_interior_degrees() {
        // For n exactly filling full layers, all non-leaves have degree delta.
        let g = balanced_regular_tree_of_depth(3, 3);
        assert!(is_tree(&g));
        assert_eq!(g.node_count(), 1 + 3 + 6 + 12);
        let leaves = g.node_ids().filter(|&v| g.degree(v) == 1).count();
        let interior_ok = g.node_ids().filter(|&v| g.degree(v) > 1).all(|v| g.degree(v) == 3);
        assert!(interior_ok);
        assert_eq!(leaves, 12);
    }

    #[test]
    fn balanced_degree_two_is_path() {
        let g = balanced_regular_tree(2, 9);
        assert_eq!(g.max_degree(), 2);
        assert!(is_tree(&g));
    }

    #[test]
    #[should_panic(expected = "at most 2 nodes")]
    fn degree_one_rejects_large_n() {
        let _ = balanced_regular_tree(1, 5);
    }
}
