//! Streaming-vs-materialized build equivalence: every generator's
//! `EdgeSource` must produce, slot for slot, the graph its materialized
//! edge list produces.
//!
//! The streaming construction refactor removed the `Vec<(usize, usize)>`
//! transient between generators and the CSR builder. Edge ids are assigned
//! in emission order and every downstream consumer pins byte-identical
//! outputs, so the refactor is only sound if streaming a source and
//! building from its materialized list are indistinguishable — same
//! endpoints per edge id, same CSR neighbor and edge slots, same local
//! ids, same degree profile. This suite pins exactly that, on the real
//! generator sources (streaming Prüfer decoder, coin-flip forests,
//! arithmetic shapes) and on sparse edge sets cut out of semi-graph
//! restrictions, plus the `TooLarge` guard firing through the streaming
//! path before any edge is pulled.

use proptest::prelude::*;
use treelocal_gen::{caterpillar, path, random_forest, random_tree, spider, star, PruferEdges};
use treelocal_graph::{
    widen_u32, EdgeSource, FnEdgeSource, Graph, GraphError, SemiGraph, SliceEdges,
};

/// Slot-for-slot equality of two graphs: identifiers, endpoints per edge
/// id, and the exact CSR slot order every engine iterates in.
fn assert_same(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count(), "node count");
    assert_eq!(a.edge_count(), b.edge_count(), "edge count");
    assert_eq!(a.id_space(), b.id_space(), "id space");
    assert_eq!(a.max_degree(), b.max_degree(), "max degree");
    assert_eq!(a.degree_sum(), b.degree_sum(), "degree sum");
    for e in a.edge_ids() {
        assert_eq!(a.endpoints(e), b.endpoints(e), "endpoints of {e:?}");
    }
    for v in a.node_ids() {
        assert_eq!(a.local_id(v), b.local_id(v), "local id of {v:?}");
        assert_eq!(a.neighbor_nodes(v), b.neighbor_nodes(v), "neighbor slots of {v:?}");
        assert_eq!(a.neighbor_edges(v), b.neighbor_edges(v), "edge slots of {v:?}");
    }
}

/// Rebuilds `g` the pre-refactor way — materialize the edge list, build
/// from the slice — and demands slot-for-slot equality with the streamed
/// original.
fn assert_stream_equals_materialized(g: &Graph) {
    let edges = g.edge_source().materialize();
    let m = Graph::from_edges(g.node_count(), &edges)
        .expect("materialized rebuild of a valid graph succeeds");
    assert_same(g, &m);
}

#[test]
fn structured_shapes_stream_equals_materialized() {
    for n in [1usize, 2, 3, 7, 64, 257] {
        assert_stream_equals_materialized(&path(n));
        assert_stream_equals_materialized(&star(n));
    }
    assert_stream_equals_materialized(&caterpillar(40, 3));
    assert_stream_equals_materialized(&spider(12, 9));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming Prüfer decoder against its own materialized stream:
    /// both builds see the decoder's emission order, so edge ids and CSR
    /// slots must coincide exactly.
    #[test]
    fn prufer_source_stream_equals_materialize(n in 2usize..400, seed in any::<u64>()) {
        let src = PruferEdges::uniform(n, seed);
        let streamed = Graph::from_edge_source(&src).expect("a decoded tree is a valid graph");
        let listed = Graph::from_edge_source(&SliceEdges::new(n, &src.materialize()))
            .expect("the same edges as a slice");
        assert_same(&streamed, &listed);
    }

    #[test]
    fn prufer_trees_stream_equals_materialized(n in 2usize..400, seed in any::<u64>()) {
        assert_stream_equals_materialized(&random_tree(n, seed));
    }

    /// Forests exercise the rewindable rng-filtering source: every
    /// replayed pass must flip the same coins.
    #[test]
    fn random_forests_stream_equals_materialized(
        n in 1usize..200,
        frac_pct in 0u32..101,
        seed in any::<u64>(),
    ) {
        assert_stream_equals_materialized(&random_forest(n, f64::from(frac_pct) / 100.0, seed));
    }

    /// Sparse edge sets: the full-rank edges of a node-induced semi-graph
    /// restriction, streamed arithmetically vs built from a list. Nodes
    /// outside the restriction keep empty slots in both builds.
    #[test]
    fn restriction_edge_sets_stream_equals_materialized(
        n in 2usize..120,
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let g = random_tree(n, seed);
        let s = SemiGraph::induced_by_nodes(&g, |v| (mask >> (v.index() % 64)) & 1 == 0);
        let kept: Vec<(usize, usize)> = g
            .edge_ids()
            .filter(|&e| s.contains_edge(e))
            .map(|e| {
                let [u, v] = g.endpoints(e);
                (u.index(), v.index())
            })
            .collect();
        let src = FnEdgeSource::new(g.node_count(), kept.len(), |emit| {
            for &(u, v) in &kept {
                emit(u, v);
            }
        });
        let streamed = Graph::from_edge_source(&src).expect("restricted edges stay valid");
        let listed = Graph::from_edges(g.node_count(), &kept).expect("same edges as a list");
        assert_same(&streamed, &listed);
    }
}

/// The `TooLarge` guard consumes only the counts: a source whose counts
/// overflow the u32 index space is rejected before a single edge is
/// pulled, which is what makes declaring absurd sizes safe.
#[test]
fn oversized_node_count_is_rejected_before_streaming() {
    let n = widen_u32(u32::MAX) + 1;
    let lying = FnEdgeSource::new(n, 0, |_emit| unreachable!("must not stream"));
    match Graph::from_edge_source(&lying) {
        Err(GraphError::TooLarge { nodes, edges }) => {
            assert_eq!(nodes, n);
            assert_eq!(edges, 0);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn oversized_edge_count_is_rejected_before_streaming() {
    // 2m must fit in u32: one edge past the half-edge budget overflows.
    let m = widen_u32(u32::MAX / 2) + 1;
    let lying = FnEdgeSource::new(3, m, |_emit| unreachable!("must not stream"));
    match Graph::from_edge_source(&lying) {
        Err(GraphError::TooLarge { nodes, edges }) => {
            assert_eq!(nodes, 3);
            assert_eq!(edges, m);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

/// The largest size the guard admits: counts at the u32 boundary pass the
/// check (and the lying source is then caught by the count contract, which
/// proves streaming actually began).
#[test]
#[should_panic(expected = "EdgeSource contract")]
fn boundary_sized_counts_pass_the_guard_and_reach_streaming() {
    let n = widen_u32(u32::MAX);
    let lying = FnEdgeSource::new(n, 1, |_emit| {});
    let _ = Graph::from_edge_source(&lying);
}
