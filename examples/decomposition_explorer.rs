//! Explore the paper's two decompositions on a workload of your choice:
//! layer histograms, lemma bounds, and the typical/atypical edge split.
//!
//! ```sh
//! cargo run --example decomposition_explorer [n] [k]
//! ```

use treelocal::decomp::{
    arb_decompose, check_lemma10, check_lemma11, check_lemma13, check_lemma14, check_lemma9,
    compress_edge_max_degree, lemma11_bound, lemma9_bound, rake_compress,
    raked_component_max_diameter, split_atypical, typical_max_degree, Mark,
};
use treelocal::gen::random_tree;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let tree = random_tree(n, 1);

    println!("=== Algorithm 1: rake-and-compress (n = {n}, k = {k}) ===");
    let rc = rake_compress(&tree, k);
    println!(
        "iterations: {} (Lemma 9 bound {}; holds: {})",
        rc.iterations,
        lemma9_bound(n, k),
        check_lemma9(&rc, n)
    );
    let mut hist = vec![[0usize; 2]; rc.iterations as usize + 1];
    for v in tree.node_ids() {
        let it = rc.iteration_of[v.index()] as usize;
        hist[it][usize::from(rc.mark_of[v.index()] == Mark::Rake)] += 1;
    }
    println!("{:>5} {:>10} {:>10}", "iter", "compressed", "raked");
    for (i, [c, r]) in hist.iter().enumerate().skip(1) {
        println!("{i:>5} {c:>10} {r:>10}");
    }
    println!(
        "compress-edge max degree: {} ≤ k (Lemma 10 holds: {})",
        compress_edge_max_degree(&tree, &rc),
        check_lemma10(&tree, &rc)
    );
    println!(
        "raked component max diameter: {} ≤ {} (Lemma 11 holds: {})",
        raked_component_max_diameter(&tree, &rc),
        lemma11_bound(n, k),
        check_lemma11(&tree, &rc)
    );

    println!("\n=== Algorithm 3: (b,k)-decomposition (a = 1, k = {}) ===", 5.max(k));
    let d = arb_decompose(&tree, 1, 5.max(k));
    println!("iterations: {} (Lemma 13 holds: {})", d.iterations, check_lemma13(&d, n));
    println!(
        "typical-edge max degree: {} ≤ k (Lemma 14 holds: {})",
        typical_max_degree(&tree, &d),
        check_lemma14(&tree, &d)
    );
    let atypical = d.atypical_edges().len();
    println!(
        "edges: {} typical + {} atypical (of {})",
        tree.edge_count() - atypical,
        atypical,
        tree.edge_count()
    );
    let split = split_atypical(&tree, &d);
    let nonempty = split.groups().filter(|&(i, j)| !split.group_edges(i, j).is_empty()).count();
    println!(
        "star-forest groups: {nonempty} non-empty of {} (3-coloring rounds: {})",
        3 * split.forests,
        split.rounds
    );
}
