//! Theorem 3 (headline result): `(edge-degree+1)`-edge coloring on trees,
//! breaking the `Ω(log n / log log n)` barrier.
//!
//! Runs the real pipeline on simulable sizes and evaluates the analytic
//! Theorem 3 bound at asymptotic sizes, showing the `log^{12/13} n` shape
//! and the separation from the MIS/matching barrier.
//!
//! ```sh
//! cargo run --example edge_coloring_tree
//! ```

use treelocal::core::{
    edge_coloring_on_tree, fit_log_exponent, mis_lower_bound_log2, tree_bound_log2,
};
use treelocal::gen::random_tree;
use treelocal::problems::classic;

fn main() {
    // Executed pipeline at simulable sizes.
    println!("=== executed pipeline (real inner algorithm) ===");
    println!("{:>9} {:>6} {:>9} {:>9} {:>7}", "n", "k", "executed", "charged", "valid");
    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        let tree = random_tree(n, 7);
        let (out, colors) = edge_coloring_on_tree(&tree);
        assert!(out.valid);
        assert!(classic::is_valid_edge_degree_coloring(&tree, &colors));
        println!(
            "{:>9} {:>6} {:>9} {:>9} {:>7}",
            n,
            out.params.k,
            out.total_rounds(),
            out.total_charged().unwrap_or(0),
            out.valid
        );
    }

    // The asymptotic claim: Theorem 3's bound behaves like log^{12/13} n
    // and eventually undercuts the MIS/matching lower bound
    // Ω(log n / log log n).
    println!("\n=== Theorem 3 bound (BBKO22b model, log-space evaluation) ===");
    println!("{:>12} {:>16} {:>16} {:>8}", "log2(n)", "edge-col bound", "MIS barrier", "winner");
    let f_log = |x: f64| x.max(1e-12).powi(12);
    let mut samples = Vec::new();
    for &l2n in &[1e3, 1e6, 1e9, 1e20, 1e30, 1e40, 1e60] {
        let edge = tree_bound_log2(l2n, f_log);
        let mis = mis_lower_bound_log2(l2n);
        samples.push((l2n, edge));
        let winner = if edge < mis { "edge-col" } else { "MIS-barrier" };
        println!("{l2n:>12.0e} {edge:>16.3e} {mis:>16.3e} {winner:>8}");
    }
    let beta = fit_log_exponent(&samples[3..]);
    println!(
        "\nfitted exponent of the edge coloring bound: {beta:.4} (paper: 12/13 = {:.4})",
        12.0 / 13.0
    );
}
