//! Theorem 15 on bounded-arboricity graphs: maximal matching and edge
//! coloring on planar-style workloads (grids and triangulated grids).
//!
//! ```sh
//! cargo run --example planar_matching
//! ```

use treelocal::algos::{EdgeColoringAlgo, MatchingAlgo};
use treelocal::core::ArbTransform;
use treelocal::gen::{grid, triangulated_grid};
use treelocal::problems::{classic, EdgeDegreeColoring, MaximalMatching};

fn main() {
    println!("=== maximal matching via Theorem 15 ===");
    println!(
        "{:>12} {:>7} {:>3} {:>5} {:>7} {:>7} {:>9}",
        "graph", "n", "a", "k", "iters", "groups", "rounds"
    );
    for (name, g, a) in [
        ("grid 40x40", grid(40, 40), 2usize),
        ("grid 80x80", grid(80, 80), 2),
        ("tri 30x30", triangulated_grid(30, 30), 3),
        ("tri 60x60", triangulated_grid(60, 60), 3),
    ] {
        let out = ArbTransform::new(&MaximalMatching, &MatchingAlgo).run(&g, a);
        assert!(out.valid);
        let m = MaximalMatching.extract(&g, &out.labeling);
        assert!(classic::is_valid_maximal_matching(&g, &m));
        println!(
            "{:>12} {:>7} {:>3} {:>5} {:>7} {:>7} {:>9}",
            name,
            g.node_count(),
            a,
            out.params.k,
            out.stats.decomposition_iterations,
            out.stats.star_groups,
            out.total_rounds()
        );
    }

    println!("\n=== (edge-degree+1)-edge coloring on planar-like graphs (ρ = 2) ===");
    for (name, g, a) in
        [("grid 50x50", grid(50, 50), 2usize), ("tri 40x40", triangulated_grid(40, 40), 3)]
    {
        let out = ArbTransform::new(&EdgeDegreeColoring, &EdgeColoringAlgo).with_rho(2).run(&g, a);
        assert!(out.valid);
        let colors = EdgeDegreeColoring.extract(&g, &out.labeling);
        assert!(classic::is_valid_edge_degree_coloring(&g, &colors));
        let palette = colors.iter().max().copied().unwrap_or(0);
        println!(
            "{name}: n = {}, rounds = {}, palette used = {palette} (2Δ-1 = {})",
            g.node_count(),
            out.total_rounds(),
            2 * g.max_degree() - 1
        );
    }
}
