//! A guided tour of the node-edge-checkability formalism (Definitions 6-8)
//! on a tiny instance you can read by eye.
//!
//! ```sh
//! cargo run --example formalism_tour
//! ```

use treelocal::graph::{Graph, SemiGraph};
use treelocal::problems::{
    brute_force_complete, solve_edges_sequential, verify_graph, verify_semigraph, HalfEdgeLabeling,
    MaximalMatching, Mis, MisLabel,
};

fn main() {
    // A 5-node caterpillar:  0 - 1 - 2 - 3, with 4 hanging off node 1.
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)]).unwrap();
    println!("tree: 0-1-2-3 with leaf 4 at node 1\n");

    // --- Maximal matching via the Lemma 17 sequential process. ---
    let mut labeling = HalfEdgeLabeling::for_graph(&g);
    let order: Vec<_> = g.edge_ids().collect();
    solve_edges_sequential(&MaximalMatching, &g, &order, &mut labeling).unwrap();
    verify_graph(&MaximalMatching, &g, &labeling).unwrap();
    println!("maximal matching labels (per half-edge):");
    for (h, l) in labeling.iter() {
        let v = g.endpoint(h.edge, h.side);
        let [a, b] = g.endpoints(h.edge);
        println!("  edge {{{a},{b}}} @ node {v}: {l:?}");
    }
    let m = MaximalMatching.extract(&g, &labeling);
    println!(
        "matched edges: {:?}\n",
        m.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i).collect::<Vec<_>>()
    );

    // --- MIS: fix a partial solution, complete with the oracle. ---
    // Fix node 1 in the set; every completion must exclude 0, 2, 4.
    let mut partial = HalfEdgeLabeling::for_graph(&g);
    let v1 = treelocal::graph::NodeId::new(1);
    for &e in g.neighbor_edges(v1) {
        partial.set(treelocal::graph::HalfEdge::new(e, g.side_of(e, v1)), MisLabel::M);
    }
    let sol = brute_force_complete(&Mis, &g, &partial).expect("completable");
    let set = Mis.extract(&g, &sol);
    println!("MIS completion with node 1 forced in: {set:?}");
    assert!(set[1] && !set[0] && !set[2] && !set[4]);

    // --- Semi-graphs: restrict to {1, 2} and look at ranks. ---
    let s = SemiGraph::induced_by_nodes(&g, |v| v.index() == 1 || v.index() == 2);
    println!("\nsemi-graph induced by nodes {{1, 2}}:");
    for &e in s.edges() {
        let [a, b] = g.endpoints(e);
        println!("  edge {{{a},{b}}}: rank {}", s.rank(e));
    }
    // A valid MIS solution on the semi-graph: node 1 in the set (labels M
    // everywhere), node 2 points at it.
    let mut sl = HalfEdgeLabeling::for_graph(&g);
    for h in s.half_edges_of(v1) {
        sl.set(h, MisLabel::M);
    }
    let v2 = treelocal::graph::NodeId::new(2);
    for h in s.half_edges_of(v2) {
        let toward_1 = g.other_endpoint(h.edge, v2) == v1;
        sl.set(h, if toward_1 { MisLabel::P } else { MisLabel::O });
    }
    verify_semigraph(&Mis, &s, &sl).unwrap();
    println!("semi-graph MIS labeling verified (rank-1 edges carry M/O, no dangling pointers)");
}
