//! Quickstart: run the Theorem 12 transformation for MIS on a random tree
//! and inspect the per-phase round breakdown.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use treelocal::algos::MisAlgo;
use treelocal::core::{direct_baseline, TreeTransform};
use treelocal::gen::{random_tree, relabel, IdStrategy};
use treelocal::problems::{classic, Mis};

fn main() {
    let n = 20_000;
    let tree = relabel(&random_tree(n, 42), IdStrategy::Permuted { seed: 42 });
    println!("instance: uniform random tree, n = {n}, Δ = {}", tree.max_degree());

    // The paper's transformation: k = g(n) from g^{f(g)} = n, rake-and-
    // compress, run the truly local algorithm on the degree-k part, finish
    // the raked components via the edge-list variant.
    let outcome = TreeTransform::new(&Mis, &MisAlgo).run(&tree);
    println!(
        "\n=== Theorem 12 transform (k = {} from g = {:.2}) ===",
        outcome.params.k, outcome.params.g_value
    );
    println!("{}", outcome.executed);
    println!("decomposition iterations : {}", outcome.stats.decomposition_iterations);
    println!("T_C max degree (≤ k)     : {}", outcome.stats.sub_max_degree);
    println!("raked components         : {}", outcome.stats.residual_components);
    println!("valid                    : {}", outcome.valid);
    assert!(outcome.valid, "transform must produce a valid MIS");

    let set = Mis.extract(&tree, &outcome.labeling);
    assert!(classic::is_valid_mis(&tree, &set));
    let members = set.iter().filter(|&&b| b).count();
    println!("MIS size                 : {members} / {n}");

    // Baseline: the same truly local algorithm run directly on the tree
    // pays for the full maximum degree.
    let direct = direct_baseline(&Mis, &MisAlgo, &tree);
    println!("\n=== direct baseline (A on the whole tree) ===");
    println!("{}", direct.executed);
    println!(
        "\ntransform: {} rounds vs direct: {} rounds",
        outcome.total_rounds(),
        direct.total_rounds()
    );
}
