//! The separation story of the paper, condensed: on trees, MIS and maximal
//! matching are stuck at Θ(log n / log log n), while (edge-degree+1)-edge
//! coloring drops to O(log^{12/13} n).
//!
//! Compares measured rounds of the transformed pipelines across problems
//! on the same trees, and the analytic bounds at asymptotic sizes.
//!
//! ```sh
//! cargo run --release --example separation
//! ```

use treelocal::core::{matching_on_tree, mis_lower_bound_log2, mis_on_tree, tree_bound_log2};
use treelocal::gen::random_tree;

fn main() {
    println!("=== measured rounds on the same trees (executed pipelines) ===");
    println!("{:>8} {:>12} {:>12}", "n", "MIS", "matching");
    for &n in &[1_000usize, 8_000, 64_000] {
        let tree = random_tree(n, 3);
        let (mis, _) = mis_on_tree(&tree);
        let (mat, _) = matching_on_tree(&tree);
        assert!(mis.valid && mat.valid);
        println!("{:>8} {:>12} {:>12}", n, mis.total_rounds(), mat.total_rounds());
    }

    println!("\n=== analytic bounds: where edge coloring escapes the barrier ===");
    println!("{:>10} {:>14} {:>14} {:>14}", "log2(n)", "MIS barrier", "edge-col bound", "ratio");
    let bbko = |x: f64| x.max(1e-12).powi(12);
    for &l2n in &[1e6f64, 1e13, 1e20, 1e27, 1e34, 1e41, 1e48] {
        let barrier = mis_lower_bound_log2(l2n);
        let edge = tree_bound_log2(l2n, bbko);
        println!("{:>10.0e} {:>14.3e} {:>14.3e} {:>14.4}", l2n, barrier, edge, edge / barrier);
    }
    println!("\nThe ratio falls below 1 and keeps shrinking: the separation of Theorem 3.");
}
